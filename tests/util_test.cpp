#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "util/alloc_probe.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/timer.h"

namespace rap::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.isOk());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::invalidArgument("bad flag");
  EXPECT_FALSE(s.isOk());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad flag");
  EXPECT_EQ(s.toString(), "INVALID_ARGUMENT: bad flag");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::notFound("x"), Status::notFound("x"));
  EXPECT_FALSE(Status::notFound("x") == Status::notFound("y"));
  EXPECT_FALSE(Status::notFound("x") == Status::internal("x"));
}

TEST(Status, AllCodesHaveNames) {
  for (const auto code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(statusCodeName(code), "UNKNOWN");
  }
}

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  const Result<int> r = 42;
  ASSERT_TRUE(r.isOk());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.valueOr(-1), 42);
  EXPECT_TRUE(r.status().isOk());
}

TEST(Result, HoldsError) {
  const Result<int> r = Status::notFound("missing");
  ASSERT_FALSE(r.isOk());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  const Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

// --------------------------------------------------------------- strings

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, JoinInverseOfSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, TrimRemovesOuterWhitespaceOnly) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\n x \r"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("none"), "none");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("foobar", "bar"));
  EXPECT_TRUE(endsWith("foobar", "bar"));
  EXPECT_FALSE(endsWith("foobar", "foo"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_FALSE(startsWith("", "x"));
}

TEST(Strings, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parseDouble(" -2e3 ").value(), -2000.0);
  EXPECT_FALSE(parseDouble("abc").isOk());
  EXPECT_FALSE(parseDouble("1.5x").isOk());
  EXPECT_FALSE(parseDouble("").isOk());
}

TEST(Strings, ParseIntStrict) {
  EXPECT_EQ(parseInt("42").value(), 42);
  EXPECT_EQ(parseInt(" -7 ").value(), -7);
  EXPECT_FALSE(parseInt("4.2").isOk());
  EXPECT_FALSE(parseInt("x").isOk());
  EXPECT_FALSE(parseInt("").isOk());
  EXPECT_FALSE(parseInt("99999999999999999999999").isOk());
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(strFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(strFormat("%.2f", 1.5), "1.50");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(toLower("MiXeD"), "mixed");
  EXPECT_EQ(toLower(""), "");
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  const auto sample = rng.sampleIndices(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(23);
  auto sample = rng.sampleIndices(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  const std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIsIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, LogNormalPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.logNormal(1.0, 0.8), 0.0);
}

// ----------------------------------------------------------------- timer

TEST(TimingStats, EmptyIsZero) {
  const TimingStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.total(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.0);
}

TEST(TimingStats, Aggregates) {
  TimingStats stats;
  for (const double s : {0.1, 0.2, 0.3, 0.4}) stats.add(s);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_NEAR(stats.total(), 1.0, 1e-12);
  EXPECT_NEAR(stats.mean(), 0.25, 1e-12);
  EXPECT_NEAR(stats.min(), 0.1, 1e-12);
  EXPECT_NEAR(stats.max(), 0.4, 1e-12);
  EXPECT_NEAR(stats.percentile(0.5), 0.2, 1e-12);
  EXPECT_NEAR(stats.percentile(1.0), 0.4, 1e-12);
}

TEST(TimingStats, PercentileEdgeCases) {
  // Empty distribution: every quantile is defined as 0.
  const TimingStats empty;
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(2.0), 0.0);

  // Single sample: every quantile is that sample.
  TimingStats one;
  one.add(0.7);
  EXPECT_DOUBLE_EQ(one.percentile(0.0), 0.7);
  EXPECT_DOUBLE_EQ(one.percentile(0.5), 0.7);
  EXPECT_DOUBLE_EQ(one.percentile(1.0), 0.7);

  // q outside [0, 1] clamps to min/max instead of indexing out of range.
  TimingStats many;
  for (const double s : {0.1, 0.2, 0.3}) many.add(s);
  EXPECT_DOUBLE_EQ(many.percentile(-0.5), 0.1);
  EXPECT_DOUBLE_EQ(many.percentile(0.0), 0.1);
  EXPECT_DOUBLE_EQ(many.percentile(1.0), 0.3);
  EXPECT_DOUBLE_EQ(many.percentile(1.5), 0.3);

  // NaN is treated like an out-of-range low quantile, not UB.
  EXPECT_DOUBLE_EQ(many.percentile(std::nan("")), 0.1);
}

TEST(TimingStats, PercentileInterleavedWithAddStaysCorrect) {
  // Regression for the lazily sorted scratch: add() must invalidate the
  // cached order so quantiles after an interleaved add see the new
  // sample, and repeated reads between adds reuse the cache coherently.
  TimingStats stats;
  stats.add(0.3);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.3);
  stats.add(0.1);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.1);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.1);
  stats.add(0.2);
  EXPECT_DOUBLE_EQ(stats.percentile(0.5), 0.2);
  EXPECT_DOUBLE_EQ(stats.percentile(1.0), 0.3);
  EXPECT_DOUBLE_EQ(stats.percentile(0.0), 0.1);
}

TEST(TimingStats, AccessorsAreNoexcept) {
  // The audit satellite in code form: every accessor is noexcept, which
  // is only honest if none of them can allocate (an allocation failure
  // under noexcept goes straight to std::terminate).
  using C = const TimingStats&;
  static_assert(noexcept(std::declval<C>().count()));
  static_assert(noexcept(std::declval<C>().empty()));
  static_assert(noexcept(std::declval<C>().total()));
  static_assert(noexcept(std::declval<C>().mean()));
  static_assert(noexcept(std::declval<C>().min()));
  static_assert(noexcept(std::declval<C>().max()));
  static_assert(noexcept(std::declval<C>().percentile(0.5)));
  static_assert(noexcept(std::declval<C>().samples()));
  // add() allocates by design and must therefore NOT be noexcept.
  static_assert(!noexcept(std::declval<TimingStats&>().add(0.0)));
}

TEST(TimingStats, NoexceptAccessorsDoNotAllocate) {
  // util_test links the alloc_probe hook specifically for this check:
  // percentile() used to sort a fresh copy of the samples under its
  // noexcept, where a bad_alloc would have terminated the process.  Now
  // every accessor must run allocation-free against the scratch that
  // add() pre-reserved — including the first percentile() after an
  // add(), which re-sorts in place.
  TimingStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.add(static_cast<double>((i * 31) % 97) / 100.0);
  }
  stats.percentile(0.5);  // warm the cache...
  stats.add(0.42);        // ...then invalidate it (add may allocate)
  allocProbeArm();
  // First percentile() after an add: re-sorts into the pre-reserved
  // scratch — the exact path that used to copy-and-sort fresh storage.
  double acc = stats.percentile(0.25) + stats.percentile(0.5) +
               stats.percentile(0.99);
  acc += stats.total() + stats.mean() + stats.min() + stats.max();
  const std::uint64_t allocs = allocProbeDisarm();
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(acc, 0.0);
}

TEST(WallTimer, MeasuresNonNegativeMonotonic) {
  const WallTimer timer;
  const double t1 = timer.elapsedSeconds();
  const double t2 = timer.elapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

// ----------------------------------------------------------------- flags

TEST(Flags, ParsesAllForms) {
  FlagParser flags;
  flags.addString("name", "default", "a string");
  flags.addInt("count", 1, "an int");
  flags.addDouble("ratio", 0.5, "a double");
  flags.addBool("verbose", false, "a switch");

  const char* argv[] = {"prog",    "--name=value", "--count", "7",
                        "--ratio", "0.25",         "--verbose"};
  ASSERT_TRUE(flags.parse(7, argv).isOk());
  EXPECT_EQ(flags.getString("name"), "value");
  EXPECT_EQ(flags.getInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.getDouble("ratio"), 0.25);
  EXPECT_TRUE(flags.getBool("verbose"));
}

TEST(Flags, DefaultsApplyWithoutArgs) {
  FlagParser flags;
  flags.addInt("k", 5, "top k");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv).isOk());
  EXPECT_EQ(flags.getInt("k"), 5);
}

TEST(Flags, UnknownFlagRejected) {
  FlagParser flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, argv).isOk());
}

TEST(Flags, TypeErrorsRejected) {
  FlagParser flags;
  flags.addInt("n", 0, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, argv).isOk());
}

TEST(Flags, MissingValueRejected) {
  FlagParser flags;
  flags.addInt("n", 0, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, argv).isOk());
}

TEST(Flags, PositionalCollected) {
  FlagParser flags;
  flags.addBool("v", false, "");
  const char* argv[] = {"prog", "input.csv", "--v", "out.csv"};
  ASSERT_TRUE(flags.parse(4, argv).isOk());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
}

TEST(Flags, BoolAcceptsExplicitValues) {
  FlagParser flags;
  flags.addBool("x", true, "");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(flags.parse(2, argv).isOk());
  EXPECT_FALSE(flags.getBool("x"));
}

TEST(Flags, HelpTextListsFlags) {
  FlagParser flags;
  flags.addInt("alpha", 3, "the alpha knob");
  const std::string help = flags.helpText("demo");
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("the alpha knob"), std::string::npos);
}

// ----------------------------------------------------------------- table

TEST(TextTable, RendersAlignedCells) {
  TextTable table;
  table.setHeader({"a", "bee"});
  table.addRow({"1", "2"});
  table.addRow({"333", "4"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| a   | bee |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4   |"), std::string::npos);
}

TEST(TextTable, EmptyRendersEmpty) {
  const TextTable table;
  EXPECT_EQ(table.render(), "");
}

TEST(TextTable, RaggedRowsPadded) {
  TextTable table;
  table.setHeader({"a", "b", "c"});
  table.addRow({"1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::pct(0.831, 1), "83.1%");
  EXPECT_EQ(TextTable::duration(0.5), "500.00ms");
  EXPECT_EQ(TextTable::duration(2.0), "2.000s");
  EXPECT_EQ(TextTable::duration(12e-6), "12.0us");
}

TEST(Logging, LevelRoundTrip) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(before);
}

}  // namespace
}  // namespace rap::util
