// Property-based suites: invariants checked over randomized workloads
// via parameterized gtest sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "dataset/groupby_kernel.h"
#include "dataset/index.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"
#include "io/csv.h"
#include "util/rng.h"

namespace rap {
namespace {

using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

/// Random sparse labeled table over a random small schema.
LeafTable randomTable(util::Rng& rng) {
  std::vector<std::int32_t> cards;
  const auto n_attrs = static_cast<std::int32_t>(rng.uniformInt(2, 4));
  for (std::int32_t i = 0; i < n_attrs; ++i) {
    cards.push_back(static_cast<std::int32_t>(rng.uniformInt(2, 5)));
  }
  const Schema schema = Schema::synthetic(cards);
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    if (rng.bernoulli(0.2)) continue;  // sparsity
    const double f = rng.uniform(1.0, 100.0);
    const bool anomalous = rng.bernoulli(0.25);
    const double v = anomalous ? f * rng.uniform(0.0, 0.5) : f;
    table.addRow(dataset::leafFromIndex(schema, i), v, f, anomalous);
  }
  return table;
}

class RandomTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTableProperty, GroupByPartitionsEveryCuboid) {
  util::Rng rng(GetParam());
  const LeafTable table = randomTable(rng);
  for (const auto mask :
       dataset::allCuboidsByLayer(dataset::allAttributesMask(table.schema()))) {
    std::uint64_t total = 0;
    std::uint64_t anomalous = 0;
    for (const auto& g : table.groupBy(mask)) {
      EXPECT_LE(g.anomalous, g.total);
      EXPECT_EQ(g.ac.cuboidMask(), mask);
      total += g.total;
      anomalous += g.anomalous;
    }
    EXPECT_EQ(total, table.size());
    EXPECT_EQ(anomalous, table.anomalousCount());
  }
}

TEST_P(RandomTableProperty, IndexAgreesWithScanOnRandomProbes) {
  util::Rng rng(GetParam());
  const LeafTable table = randomTable(rng);
  const dataset::InvertedIndex index(table);
  const Schema& schema = table.schema();
  for (int probe = 0; probe < 20; ++probe) {
    AttributeCombination ac(schema.attributeCount());
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      if (rng.bernoulli(0.5)) {
        ac.setSlot(a, static_cast<dataset::ElemId>(
                          rng.uniformInt(0, schema.cardinality(a) - 1)));
      }
    }
    const auto agg_index = index.aggregateFor(ac);
    const auto agg_scan = table.aggregateFor(ac);
    EXPECT_EQ(agg_index.total, agg_scan.total);
    EXPECT_EQ(agg_index.anomalous, agg_scan.anomalous);
  }
}

TEST_P(RandomTableProperty, KernelMatchesTableGroupByBitExactly) {
  // The dense kernel's contract: element-for-element identical to
  // LeafTable::groupBy on every cuboid, including the float sums
  // (compared with ==, not a tolerance — the parallel search's
  // bit-identity guarantee rests on this).
  util::Rng rng(GetParam() ^ 0xC0DE);
  const LeafTable table = randomTable(rng);
  const dataset::GroupByKernel kernel(table);
  for (const auto mask :
       dataset::allCuboidsByLayer(dataset::allAttributesMask(table.schema()))) {
    const auto expected = table.groupBy(mask);
    const auto actual = kernel.groupBy(mask);
    ASSERT_EQ(expected.size(), actual.size()) << "mask=" << mask;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].ac, actual[i].ac);
      EXPECT_EQ(expected[i].total, actual[i].total);
      EXPECT_EQ(expected[i].anomalous, actual[i].anomalous);
      EXPECT_EQ(expected[i].v_sum, actual[i].v_sum);
      EXPECT_EQ(expected[i].f_sum, actual[i].f_sum);
    }
  }
}

TEST_P(RandomTableProperty, WorkspaceGroupByBitIdenticalUnderReuse) {
  // The allocation-free path's contract under REUSE: one kernel, one
  // scratch, and one grow-only output vector driven across two random
  // tables x every cuboid x repeated passes must stay element-for-element
  // identical to LeafTable::groupBy (float sums compared with ==).  The
  // failure mode this hunts is stale state leaking between calls: a
  // touched cell not reset to zero, or an output slot keeping a previous
  // mask's element in a now-wildcard attribute.
  util::Rng rng(GetParam() ^ 0x5EED);
  const LeafTable table_a = randomTable(rng);
  const LeafTable table_b = randomTable(rng);
  dataset::GroupByKernel kernel;
  dataset::GroupByScratch scratch;
  std::vector<dataset::GroupAggregate> out;
  for (int pass = 0; pass < 3; ++pass) {
    for (const LeafTable* table : {&table_a, &table_b}) {
      kernel.rebind(*table);
      for (const auto mask : dataset::allCuboidsByLayer(
               dataset::allAttributesMask(table->schema()))) {
        const auto expected = table->groupBy(mask);
        const std::size_t count = kernel.groupByInto(mask, scratch, out);
        ASSERT_EQ(expected.size(), count)
            << "pass=" << pass << " mask=" << mask;
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(expected[i].ac, out[i].ac)
              << "pass=" << pass << " mask=" << mask << " i=" << i;
          EXPECT_EQ(expected[i].total, out[i].total);
          EXPECT_EQ(expected[i].anomalous, out[i].anomalous);
          EXPECT_EQ(expected[i].v_sum, out[i].v_sum);
          EXPECT_EQ(expected[i].f_sum, out[i].f_sum);
        }
      }
    }
  }
}

TEST_P(RandomTableProperty, KernelAggregateAgreesWithIndexOnRandomProbes) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  const LeafTable table = randomTable(rng);
  const dataset::GroupByKernel kernel(table);
  const dataset::InvertedIndex index(table);
  const Schema& schema = table.schema();
  for (int probe = 0; probe < 20; ++probe) {
    AttributeCombination ac(schema.attributeCount());
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      if (rng.bernoulli(0.5)) {
        ac.setSlot(a, static_cast<dataset::ElemId>(
                          rng.uniformInt(0, schema.cardinality(a) - 1)));
      }
    }
    const auto agg_kernel = kernel.aggregateFor(ac);
    const auto agg_index = index.aggregateFor(ac);
    EXPECT_EQ(agg_kernel.total, agg_index.total);
    EXPECT_EQ(agg_kernel.anomalous, agg_index.anomalous);
  }
}

TEST_P(RandomTableProperty, RapMinerInvariants) {
  util::Rng rng(GetParam());
  const LeafTable table = randomTable(rng);
  core::RapMinerConfig config;
  config.search.t_conf = rng.uniform(0.55, 0.95);
  const auto result = core::RapMiner(config).localize(table, 0);

  for (const auto& p : result.patterns) {
    // Criteria 2: every reported pattern clears the confidence bar.
    EXPECT_GT(p.confidence, config.search.t_conf);
    EXPECT_DOUBLE_EQ(table.aggregateFor(p.ac).confidence(), p.confidence);
    // Layer bookkeeping is consistent.
    EXPECT_EQ(p.layer, p.ac.dim());
    EXPECT_NEAR(p.score, core::rapScore(p.confidence, p.layer), 1e-12);
    // Deleted attributes never appear in results.
    for (dataset::AttrId a = 0; a < table.schema().attributeCount(); ++a) {
      const auto& kept = result.stats.kept_attributes;
      if (std::find(kept.begin(), kept.end(), a) == kept.end()) {
        EXPECT_TRUE(p.ac.isWildcard(a));
      }
    }
  }
  // Criteria 3 / Definition 1: results are pairwise non-ancestral.
  for (const auto& a : result.patterns) {
    for (const auto& b : result.patterns) {
      if (a.ac == b.ac) continue;
      EXPECT_FALSE(a.ac.isAncestorOf(b.ac));
    }
  }
  // Ranking is by score, non-increasing.
  for (std::size_t i = 1; i < result.patterns.size(); ++i) {
    EXPECT_GE(result.patterns[i - 1].score, result.patterns[i].score);
  }
}

TEST_P(RandomTableProperty, EarlyStopImpliesCoverage) {
  util::Rng rng(GetParam() ^ 0xABCDEF);
  const LeafTable table = randomTable(rng);
  const auto result = core::RapMiner().localize(table, 0);
  if (result.stats.early_stopped) {
    EXPECT_TRUE(table.coversAllAnomalies(eval::patternsToAcs(result.patterns)));
  }
}

TEST_P(RandomTableProperty, DeletionNeverExpandsSearch) {
  util::Rng rng(GetParam() ^ 0x123456);
  const LeafTable table = randomTable(rng);
  core::RapMinerConfig with;
  with.search.early_stop = false;
  core::RapMinerConfig without = with;
  without.cp.enable_attribute_deletion = false;
  const auto r_with = core::RapMiner(with).localize(table, 0);
  const auto r_without = core::RapMiner(without).localize(table, 0);
  EXPECT_LE(r_with.stats.cuboids_visited, r_without.stats.cuboids_visited);
  EXPECT_LE(r_with.stats.combinations_evaluated,
            r_without.stats.combinations_evaluated);
}

TEST_P(RandomTableProperty, TopKIsPrefixOfFullRanking) {
  util::Rng rng(GetParam() ^ 0x777);
  const LeafTable table = randomTable(rng);
  const core::RapMiner miner;
  const auto full = miner.localize(table, 0);
  const auto top2 = miner.localize(table, 2);
  ASSERT_LE(top2.patterns.size(), 2u);
  for (std::size_t i = 0; i < top2.patterns.size(); ++i) {
    EXPECT_EQ(top2.patterns[i].ac, full.patterns[i].ac);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTableProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

// ------------------------------------------------------ generator sweeps

class RapmdProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RapmdProperty, InjectionInvariants) {
  gen::RapmdConfig config;
  config.num_cases = 2;
  gen::RapmdGenerator generator(Schema::cdn(), config, GetParam());
  for (const auto& c : generator.generate()) {
    // Verdicts equal descendant-of-truth membership (no label noise).
    for (const auto& row : c.table.rows()) {
      const bool injected =
          std::any_of(c.truth.begin(), c.truth.end(),
                      [&row](const AttributeCombination& rap) {
                        return rap.matchesLeaf(row.ac);
                      });
      EXPECT_EQ(row.anomalous, injected);
      EXPECT_GT(row.f, 0.0);
      EXPECT_GE(row.v, 0.0);
    }
    // Ground truth count within Randomness 1 bounds.
    EXPECT_GE(c.truth.size(), 1u);
    EXPECT_LE(c.truth.size(), 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RapmdProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// Robustness sweep: every localizer must return a bounded, rank-ordered
// result (and not crash) on arbitrary sparse labeled tables.
class LocalizerRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalizerRobustness, AllLocalizersSurviveRandomTables) {
  util::Rng rng(GetParam() ^ 0xFEED);
  const LeafTable table = randomTable(rng);
  for (const auto& localizer :
       eval::standardLocalizers({}, /*include_hotspot=*/true)) {
    const auto patterns = localizer.fn(table, 4);
    EXPECT_LE(patterns.size(), 4u) << localizer.name;
    for (std::size_t i = 1; i < patterns.size(); ++i) {
      EXPECT_LE(patterns[i].score, patterns[i - 1].score + 1e-9)
          << localizer.name;
    }
    for (const auto& p : patterns) {
      EXPECT_GT(p.ac.dim(), 0) << localizer.name
                               << " returned the lattice root";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalizerRobustness,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------- io fuzzing

class CsvRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsvRoundTripProperty, RandomDocumentsRoundTrip) {
  util::Rng rng(GetParam());
  // Random field content drawn from a hostile alphabet.
  const std::string alphabet = "ab,\"\n\r\t x";
  std::vector<io::CsvRow> rows;
  const auto n_rows = static_cast<std::size_t>(rng.uniformInt(1, 8));
  const auto n_cols = static_cast<std::size_t>(rng.uniformInt(1, 5));
  for (std::size_t r = 0; r < n_rows; ++r) {
    io::CsvRow row;
    for (std::size_t c = 0; c < n_cols; ++c) {
      std::string field;
      const auto len = static_cast<std::size_t>(rng.uniformInt(0, 10));
      for (std::size_t i = 0; i < len; ++i) {
        field += alphabet[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
      }
      // A lone '\r' round-trips as a line break artifact only when
      // unquoted; the writer quotes it, so any content is fair game —
      // except a field that is entirely empty rows-wise, handled below.
      row.push_back(std::move(field));
    }
    rows.push_back(std::move(row));
  }
  // An all-empty single-field final row is indistinguishable from a
  // trailing newline; skip that degenerate shape.
  if (rows.back().size() == 1 && rows.back()[0].empty()) {
    rows.back()[0] = "x";
  }
  const auto parsed = io::parseCsv(io::writeCsv(rows));
  ASSERT_TRUE(parsed.isOk()) << "seed=" << GetParam();
  EXPECT_EQ(parsed.value(), rows) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

class AcTextRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcTextRoundTrip, ToStringParsesBack) {
  util::Rng rng(GetParam());
  const Schema schema = Schema::cdn();
  for (int i = 0; i < 50; ++i) {
    AttributeCombination ac(schema.attributeCount());
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      if (rng.bernoulli(0.5)) {
        ac.setSlot(a, static_cast<dataset::ElemId>(
                          rng.uniformInt(0, schema.cardinality(a) - 1)));
      }
    }
    const auto parsed =
        AttributeCombination::parse(schema, ac.toString(schema));
    ASSERT_TRUE(parsed.isOk());
    EXPECT_EQ(parsed.value(), ac);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcTextRoundTrip,
                         ::testing::Values(3, 5, 7, 9));

class LatticeProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(LatticeProperty, CuboidCountsMatchBinomials) {
  const std::int32_t n = GetParam();
  const dataset::CuboidMask allowed = (1u << n) - 1;
  std::uint64_t total = 0;
  for (std::int32_t layer = 1; layer <= n; ++layer) {
    const auto at_layer = dataset::cuboidsAtLayer(allowed, layer);
    // C(n, layer) cuboids per layer.
    std::uint64_t binom = 1;
    for (std::int32_t i = 0; i < layer; ++i) {
      binom = binom * static_cast<std::uint64_t>(n - i) /
              static_cast<std::uint64_t>(i + 1);
    }
    EXPECT_EQ(at_layer.size(), binom) << "n=" << n << " layer=" << layer;
    total += at_layer.size();
  }
  EXPECT_EQ(total, (std::uint64_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, LatticeProperty,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10));

}  // namespace
}  // namespace rap
