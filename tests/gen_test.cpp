#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "detect/detector.h"
#include "gen/background.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"

namespace rap::gen {
namespace {

using dataset::AttributeCombination;
using dataset::Schema;

// ------------------------------------------------------------ Background

TEST(Background, DeterministicForSeed) {
  const Schema schema = Schema::tiny();
  const CdnBackgroundModel a(schema, {}, 42);
  const CdnBackgroundModel b(schema, {}, 42);
  for (std::uint64_t leaf = 0; leaf < schema.leafCount(); ++leaf) {
    EXPECT_DOUBLE_EQ(a.expectedVolume(leaf, 100), b.expectedVolume(leaf, 100));
  }
}

TEST(Background, SparsityFractionRoughlyHonored) {
  const Schema schema = Schema::cdn();
  BackgroundConfig config;
  config.sparsity = 0.3;
  const CdnBackgroundModel model(schema, config, 7);
  std::uint64_t inactive = 0;
  for (std::uint64_t leaf = 0; leaf < model.leafCount(); ++leaf) {
    inactive += model.isActive(leaf) ? 0 : 1;
  }
  const double fraction =
      static_cast<double>(inactive) / static_cast<double>(model.leafCount());
  EXPECT_NEAR(fraction, 0.3, 0.03);
}

TEST(Background, InactiveLeavesHaveZeroVolume) {
  const Schema schema = Schema::cdn();
  BackgroundConfig config;
  config.sparsity = 0.5;
  const CdnBackgroundModel model(schema, config, 3);
  for (std::uint64_t leaf = 0; leaf < model.leafCount(); ++leaf) {
    if (!model.isActive(leaf)) {
      EXPECT_DOUBLE_EQ(model.expectedVolume(leaf, 0), 0.0);
    } else {
      EXPECT_GT(model.expectedVolume(leaf, 0), 0.0);
    }
  }
}

TEST(Background, DiurnalModulationVariesOverTheDay) {
  const Schema schema = Schema::tiny();
  const CdnBackgroundModel model(schema, {}, 11);
  std::uint64_t leaf = 0;
  while (!model.isActive(leaf)) ++leaf;
  double lo = 1e300;
  double hi = 0.0;
  for (std::int64_t minute = 0; minute < 1440; minute += 60) {
    const double volume = model.expectedVolume(leaf, minute);
    lo = std::min(lo, volume);
    hi = std::max(hi, volume);
  }
  EXPECT_GT(hi / lo, 1.5);  // depth 0.45 -> ~2.6x swing
}

TEST(Background, WeekendDip) {
  const Schema schema = Schema::tiny();
  const CdnBackgroundModel model(schema, {}, 13);
  std::uint64_t leaf = 0;
  while (!model.isActive(leaf)) ++leaf;
  const double weekday = model.expectedVolume(leaf, 0);           // day 0
  const double weekend = model.expectedVolume(leaf, 5 * 1440);    // day 5
  EXPECT_LT(weekend, weekday);
}

TEST(Background, SampleJitterStaysNearExpectation) {
  const Schema schema = Schema::tiny();
  const CdnBackgroundModel model(schema, {}, 17);
  std::uint64_t leaf = 0;
  while (!model.isActive(leaf)) ++leaf;
  util::Rng rng(1);
  const double expected = model.expectedVolume(leaf, 500);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += model.sampleVolume(leaf, 500, rng);
  EXPECT_NEAR(sum / n / expected, 1.0, 0.01);
}

// ----------------------------------------------------------------- RAPMD

RapmdConfig testConfig() {
  RapmdConfig config;
  config.num_cases = 6;
  return config;
}

TEST(Rapmd, GeneratesRequestedCases) {
  RapmdGenerator generator(Schema::cdn(), testConfig(), 1);
  const auto cases = generator.generate();
  ASSERT_EQ(cases.size(), 6u);
  for (const auto& c : cases) {
    EXPECT_FALSE(c.table.empty());
    EXPECT_GE(c.truth.size(), 1u);
    EXPECT_LE(c.truth.size(), 3u);
  }
}

TEST(Rapmd, GenerateCaseMatchesGenerate) {
  RapmdGenerator a(Schema::cdn(), testConfig(), 99);
  RapmdGenerator b(Schema::cdn(), testConfig(), 99);
  const auto all = a.generate();
  for (std::int32_t i = 0; i < 6; ++i) {
    const auto single = b.generateCase(i);
    EXPECT_EQ(single.truth, all[static_cast<std::size_t>(i)].truth);
    EXPECT_EQ(single.table.size(), all[static_cast<std::size_t>(i)].table.size());
  }
}

TEST(Rapmd, TruthRapsAreNotRelated) {
  RapmdGenerator generator(Schema::cdn(), testConfig(), 5);
  for (const auto& c : generator.generate()) {
    for (std::size_t i = 0; i < c.truth.size(); ++i) {
      for (std::size_t j = 0; j < c.truth.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(c.truth[i].covers(c.truth[j]))
            << c.truth[i].toString(c.table.schema()) << " covers "
            << c.truth[j].toString(c.table.schema());
      }
    }
  }
}

TEST(Rapmd, TruthDimensionsWithinConfiguredRange) {
  auto config = testConfig();
  config.min_rap_dim = 2;
  config.max_rap_dim = 3;
  RapmdGenerator generator(Schema::cdn(), config, 21);
  for (const auto& c : generator.generate()) {
    for (const auto& rap : c.truth) {
      EXPECT_GE(rap.dim(), 2);
      EXPECT_LE(rap.dim(), 3);
    }
  }
}

TEST(Rapmd, DeviationsFollowInjectionRecipe) {
  RapmdGenerator generator(Schema::cdn(), testConfig(), 31);
  const auto c = generator.generateCase(0);
  for (const auto& row : c.table.rows()) {
    const bool injected =
        std::any_of(c.truth.begin(), c.truth.end(),
                    [&row](const AttributeCombination& rap) {
                      return rap.matchesLeaf(row.ac);
                    });
    // Recover Dev from Eq. 4 and check the Randomness-2 ranges.
    const double dev = (row.f - row.v) / (row.f + 1e-6);
    if (injected) {
      EXPECT_GE(dev, 0.1 - 1e-6);
      EXPECT_LE(dev, 0.9 + 1e-6);
      EXPECT_TRUE(row.anomalous);
    } else {
      EXPECT_GE(dev, -0.02 - 1e-6);
      EXPECT_LE(dev, 0.09 + 1e-6);
      EXPECT_FALSE(row.anomalous);
    }
  }
}

TEST(Rapmd, VerdictRangesAreSeparableByDetector) {
  // The injection recipe guarantees a clean threshold at 0.095.
  RapmdGenerator generator(Schema::cdn(), testConfig(), 41);
  auto c = generator.generateCase(2);
  std::uint32_t injected_count = c.table.anomalousCount();
  const detect::RelativeDeviationDetector detector(0.095);
  EXPECT_EQ(detector.run(c.table), injected_count);
}

TEST(Rapmd, LabelNoiseFlipsRoughlyRequestedFraction) {
  auto config = testConfig();
  config.label_noise = 0.1;
  RapmdGenerator noisy(Schema::cdn(), config, 77);
  config.label_noise = 0.0;
  RapmdGenerator clean(Schema::cdn(), config, 77);
  const auto noisy_case = noisy.generateCase(0);
  const auto clean_case = clean.generateCase(0);
  ASSERT_EQ(noisy_case.table.size(), clean_case.table.size());
  std::uint32_t flips = 0;
  for (dataset::RowId id = 0; id < noisy_case.table.size(); ++id) {
    flips += noisy_case.table.row(id).anomalous !=
                     clean_case.table.row(id).anomalous
                 ? 1
                 : 0;
  }
  const double fraction =
      static_cast<double>(flips) / static_cast<double>(noisy_case.table.size());
  EXPECT_NEAR(fraction, 0.1, 0.03);
}

TEST(Rapmd, EachTruthRapHasSupport) {
  RapmdGenerator generator(Schema::cdn(), testConfig(), 51);
  for (const auto& c : generator.generate()) {
    for (const auto& rap : c.truth) {
      EXPECT_GE(c.table.aggregateFor(rap).total, 3u)
          << rap.toString(c.table.schema());
    }
  }
}

// --------------------------------------------------------------- Squeeze

TEST(SqueezeGen, GroupShapes) {
  SqueezeGenConfig config;
  config.cases_per_group = 4;
  SqueezeGenerator generator(config, 3);
  const auto group = generator.generateGroup(2, 3);
  EXPECT_EQ(group.n_dims, 2);
  EXPECT_EQ(group.n_raps, 3);
  ASSERT_EQ(group.cases.size(), 4u);
  for (const auto& c : group.cases) {
    ASSERT_EQ(c.truth.size(), 3u);
    for (const auto& rap : c.truth) EXPECT_EQ(rap.dim(), 2);
  }
}

TEST(SqueezeGen, AllRapsShareOneCuboid) {
  SqueezeGenConfig config;
  config.cases_per_group = 5;
  SqueezeGenerator generator(config, 9);
  for (const auto& c : generator.generateGroup(2, 2).cases) {
    ASSERT_EQ(c.truth.size(), 2u);
    EXPECT_EQ(c.truth[0].cuboidMask(), c.truth[1].cuboidMask());
    EXPECT_FALSE(c.truth[0] == c.truth[1]);
  }
}

TEST(SqueezeGen, VerticalAssumptionHolds) {
  // Every descendant leaf of one RAP carries the same relative deviation
  // (up to the configured noise; default noise_sigma is 0).
  SqueezeGenConfig config;
  config.cases_per_group = 2;
  SqueezeGenerator generator(config, 15);
  for (const auto& c : generator.generateGroup(1, 2).cases) {
    for (const auto& rap : c.truth) {
      double first_dev = -1.0;
      for (const auto& row : c.table.rows()) {
        if (!rap.matchesLeaf(row.ac)) continue;
        const double dev = (row.f - row.v) / row.f;
        if (first_dev < 0.0) {
          first_dev = dev;
        } else {
          EXPECT_NEAR(dev, first_dev, 1e-9);
        }
      }
      EXPECT_GT(first_dev, 0.0);
    }
  }
}

TEST(SqueezeGen, HorizontalAssumptionSeparatesRapDeviations) {
  SqueezeGenConfig config;
  config.cases_per_group = 2;
  SqueezeGenerator generator(config, 19);
  for (const auto& c : generator.generateGroup(1, 3).cases) {
    std::vector<double> devs;
    for (const auto& rap : c.truth) {
      for (const auto& row : c.table.rows()) {
        if (rap.matchesLeaf(row.ac)) {
          devs.push_back((row.f - row.v) / row.f);
          break;
        }
      }
    }
    ASSERT_EQ(devs.size(), 3u);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      for (std::size_t j = i + 1; j < devs.size(); ++j) {
        EXPECT_GE(std::fabs(devs[i] - devs[j]), 0.08 - 1e-9);
      }
    }
  }
}

TEST(SqueezeGen, NoiseLevelsIncrease) {
  for (std::int32_t level = 1; level <= 4; ++level) {
    EXPECT_GT(squeezeNoiseSigma(level), squeezeNoiseSigma(level - 1));
  }
}

TEST(SqueezeGen, AllGroupsCoverTheNineCells) {
  SqueezeGenConfig config;
  config.cases_per_group = 1;
  SqueezeGenerator generator(config, 23);
  const auto groups = generator.generateAllGroups();
  ASSERT_EQ(groups.size(), 9u);
  std::set<std::pair<int, int>> cells;
  for (const auto& g : groups) cells.emplace(g.n_dims, g.n_raps);
  EXPECT_EQ(cells.size(), 9u);
}

TEST(SqueezeGen, DeterministicForSeed) {
  SqueezeGenConfig config;
  config.cases_per_group = 2;
  SqueezeGenerator a(config, 31);
  SqueezeGenerator b(config, 31);
  const auto ga = a.generateGroup(2, 1);
  const auto gb = b.generateGroup(2, 1);
  for (std::size_t i = 0; i < ga.cases.size(); ++i) {
    EXPECT_EQ(ga.cases[i].truth, gb.cases[i].truth);
    EXPECT_EQ(ga.cases[i].table.size(), gb.cases[i].table.size());
  }
}

}  // namespace
}  // namespace rap::gen
