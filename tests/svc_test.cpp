// Localization service (src/svc): JSON request parsing, snapshot
// decoding + hashing, the LRU+TTL result cache, the job manager's
// admission control, and the HTTP handlers end to end — including the
// parity contract with the csv_localize pipeline and the bit-identical
// cached-resubmission guarantee.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "dataset/schema.h"
#include "detect/detector.h"
#include "fault/fault.h"
#include "io/csv.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/breaker.h"
#include "svc/catalog.h"
#include "svc/job_journal.h"
#include "svc/job_manager.h"
#include "svc/json_value.h"
#include "svc/overload.h"
#include "svc/result_cache.h"
#include "svc/router.h"
#include "svc/service.h"
#include "svc/snapshot.h"
#include "svc/supervisor.h"
#include "svc/tenant_config.h"
#include "stream/engine.h"
#include "util/strings.h"

namespace rap {
namespace {

using Clock = svc::ResultCache::Clock;

// ---------------------------------------------------------------------------
// Shared fixtures: the csv_localize demo snapshot on Schema::tiny().

dataset::LeafTable demoTable(const dataset::Schema& schema) {
  dataset::LeafTable table(schema);
  const auto broken =
      dataset::AttributeCombination::parse(schema, "(*, b2, *, *)").value();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 50.0 + static_cast<double>(i % 7) * 10.0;
    const double v = broken.matchesLeaf(leaf) ? f * 0.3 : f;
    table.addRow(leaf, v, f, /*anomalous=*/false);
  }
  return table;
}

/// The saveLeafTable CSV layout as an in-memory request body.
std::string csvBodyOf(const dataset::LeafTable& table) {
  const dataset::Schema& schema = table.schema();
  std::vector<io::CsvRow> rows;
  io::CsvRow header;
  for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
    header.push_back(schema.attribute(a).name());
  }
  header.push_back("real");
  header.push_back("predict");
  rows.push_back(std::move(header));
  for (const auto& row : table.rows()) {
    io::CsvRow out;
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      out.push_back(schema.attribute(a).elementName(row.ac.slot(a)));
    }
    out.push_back(std::to_string(row.v));
    out.push_back(std::to_string(row.f));
    rows.push_back(std::move(out));
  }
  return io::writeCsv(rows);
}

/// The same snapshot as a {"rows": [[...]]} JSON body.
std::string jsonBodyOf(const dataset::LeafTable& table) {
  const dataset::Schema& schema = table.schema();
  std::string out = "{\"rows\":[";
  bool first_row = true;
  for (const auto& row : table.rows()) {
    if (!first_row) out += ",";
    first_row = false;
    out += "[";
    for (dataset::AttrId a = 0; a < schema.attributeCount(); ++a) {
      out += "\"" + schema.attribute(a).elementName(row.ac.slot(a)) + "\",";
    }
    out += std::to_string(row.v) + "," + std::to_string(row.f) + "]";
  }
  out += "]}";
  return out;
}

obs::HttpRequest postRequest(std::string body, const std::string& query = "",
                             const std::string& content_type = "") {
  obs::HttpRequest request;
  request.method = "POST";
  request.path = "/api/v1/localize";
  request.query = query;
  request.body = std::move(body);
  if (!content_type.empty()) {
    request.headers.emplace_back("content-type", content_type);
  }
  return request;
}

/// The "patterns" portion of a result document — everything before the
/// "stats" object, whose stage timings differ run to run.
std::string patternsOf(const std::string& result_json) {
  const std::size_t pos = result_json.find(",\"stats\"");
  return pos == std::string::npos ? result_json : result_json.substr(0, pos);
}

const std::string* headerOf(const obs::HttpResponse& response,
                            const std::string& name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// JsonValue.

TEST(JsonValue, ParsesDocumentsAndReportsOffsets) {
  const auto doc = svc::JsonValue::parse(
      " {\"a\": [1, -2.5e1, \"x\\u00e9\\n\"], \"b\": {\"c\": true}, "
      "\"d\": null} ");
  ASSERT_TRUE(doc.isOk()) << doc.status().toString();
  const auto* a = doc.value().find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->isArray());
  ASSERT_EQ(a->array_value.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_value[0].number_value, 1.0);
  EXPECT_DOUBLE_EQ(a->array_value[1].number_value, -25.0);
  EXPECT_EQ(a->array_value[2].string_value, "x\xC3\xA9\n");
  const auto* b = doc.value().find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->bool_value);
  EXPECT_TRUE(doc.value().find("d")->isNull());
  EXPECT_EQ(doc.value().find("missing"), nullptr);
}

TEST(JsonValue, RejectsHostileInput) {
  // Trailing garbage.
  EXPECT_FALSE(svc::JsonValue::parse("{} x").isOk());
  // Unterminated / malformed.
  EXPECT_FALSE(svc::JsonValue::parse("{\"a\":").isOk());
  EXPECT_FALSE(svc::JsonValue::parse("[1,]").isOk());
  EXPECT_FALSE(svc::JsonValue::parse("01").isOk());
  EXPECT_FALSE(svc::JsonValue::parse("\"\x01\"").isOk());
  // Depth bomb: past the cap must fail, within the cap must pass.
  std::string deep(svc::JsonValue::kMaxDepth + 2, '[');
  deep += std::string(svc::JsonValue::kMaxDepth + 2, ']');
  EXPECT_FALSE(svc::JsonValue::parse(deep).isOk());
  std::string ok(svc::JsonValue::kMaxDepth, '[');
  ok += std::string(svc::JsonValue::kMaxDepth, ']');
  EXPECT_TRUE(svc::JsonValue::parse(ok).isOk());
  // Errors carry a byte offset.
  const auto bad = svc::JsonValue::parse("{\"a\" 1}");
  ASSERT_FALSE(bad.isOk());
  EXPECT_NE(bad.status().message().find("byte"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot decoding + hashing.

TEST(Snapshot, CsvAndJsonBodiesDecodeToTheSameTable) {
  const auto schema = dataset::Schema::tiny();
  const auto table = demoTable(schema);

  const auto from_csv = svc::parseCsvSnapshot(schema, csvBodyOf(table));
  ASSERT_TRUE(from_csv.isOk()) << from_csv.status().toString();
  const auto from_json = svc::parseJsonSnapshot(schema, jsonBodyOf(table));
  ASSERT_TRUE(from_json.isOk()) << from_json.status().toString();

  ASSERT_EQ(from_csv->size(), table.size());
  ASSERT_EQ(from_json->size(), table.size());
  // The encoding-independent hash sees one identical snapshot.
  EXPECT_EQ(svc::snapshotHash(*from_csv), svc::snapshotHash(*from_json));
  EXPECT_EQ(svc::snapshotHash(*from_csv), svc::snapshotHash(table));
}

TEST(Snapshot, RejectsMalformedBodies) {
  const auto schema = dataset::Schema::tiny();
  // Unknown element name.
  EXPECT_FALSE(
      svc::parseCsvSnapshot(schema, "A,B,C,D,real,predict\nzz,b1,c1,d1,1,1\n")
          .isOk());
  // Non-finite KPI.
  EXPECT_FALSE(
      svc::parseCsvSnapshot(schema,
                            "A,B,C,D,real,predict\na1,b1,c1,d1,nan,1\n")
          .isOk());
  // JSON: not an object with rows.
  EXPECT_FALSE(svc::parseJsonSnapshot(schema, "[1,2]").isOk());
  // JSON: wrong arity.
  EXPECT_FALSE(
      svc::parseJsonSnapshot(schema, "{\"rows\":[[\"a1\",\"b1\",1.0]]}")
          .isOk());
  // JSON: attribute cell must be a string.
  EXPECT_FALSE(
      svc::parseJsonSnapshot(
          schema, "{\"rows\":[[1,\"b1\",\"c1\",\"d1\",1.0,1.0]]}")
          .isOk());
}

TEST(Snapshot, ContentHashSeparatesBodies) {
  EXPECT_EQ(svc::contentHash("abc"), svc::contentHash("abc"));
  EXPECT_NE(svc::contentHash("abc"), svc::contentHash("abd"));
  EXPECT_NE(svc::contentHash(""),
            svc::contentHash(std::string(8, '\0')));
  // Word-wise and byte-wise hashes are distinct functions by design.
  const std::string long_body(1 << 16, 'x');
  EXPECT_EQ(svc::contentHash(long_body), svc::contentHash(long_body));
  EXPECT_NE(svc::contentHash(long_body + "a"), svc::contentHash(long_body));
  EXPECT_EQ(svc::fnv1a("abc"), svc::fnv1a("abc"));
  EXPECT_NE(svc::fnv1a("abc"), svc::fnv1a("abd"));
}

// ---------------------------------------------------------------------------
// ResultCache.

TEST(ResultCache, TtlExpiresFromInsertionTime) {
  svc::ResultCache cache({.capacity = 4, .ttl_seconds = 10.0});
  const auto t0 = Clock::now();
  cache.putAt(1, "doc", t0);

  // Just inside the TTL: hit, and the hit refreshes recency only.
  auto hit = cache.getAt(1, t0 + std::chrono::seconds(9));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "doc");

  // Past the TTL (anchored at insertion, NOT at the last get): gone.
  EXPECT_FALSE(cache.getAt(1, t0 + std::chrono::seconds(11)).has_value());
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.size(), 0u);

  // Overwriting re-anchors the TTL.
  cache.putAt(2, "v1", t0);
  cache.putAt(2, "v2", t0 + std::chrono::seconds(8));
  const auto fresh = cache.getAt(2, t0 + std::chrono::seconds(17));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(*fresh, "v2");
}

TEST(ResultCache, EvictsLeastRecentlyUsedAtCapacity) {
  svc::ResultCache cache({.capacity = 2, .ttl_seconds = 0.0});
  const auto t0 = Clock::now();
  cache.putAt(1, "one", t0);
  cache.putAt(2, "two", t0);
  // Touch 1 so 2 becomes the LRU entry.
  ASSERT_TRUE(cache.getAt(1, t0).has_value());
  cache.putAt(3, "three", t0);

  EXPECT_TRUE(cache.getAt(1, t0).has_value());
  EXPECT_FALSE(cache.getAt(2, t0).has_value());  // evicted
  EXPECT_TRUE(cache.getAt(3, t0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCache, CapacityZeroDisablesCaching) {
  svc::ResultCache cache({.capacity = 0, .ttl_seconds = 0.0});
  cache.put(7, "doc");
  EXPECT_FALSE(cache.get(7).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// ---------------------------------------------------------------------------
// JobManager.

svc::JobRequest demoJob(std::uint64_t cache_key = 0) {
  svc::JobRequest request(demoTable(dataset::Schema::tiny()));
  request.cache_key = cache_key;
  return request;
}

TEST(JobManager, ExecutesQueuedJobsToCompletion) {
  svc::JobManager manager({.queue_capacity = 8, .workers = 2});
  const auto id = manager.submit(demoJob());
  ASSERT_TRUE(id.isOk()) << id.status().toString();
  manager.drain();

  const auto status = manager.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, svc::JobState::kDone);
  EXPECT_FALSE(status->cache_hit);
  // The demo snapshot's root cause is (*, b2, *, *).
  EXPECT_NE(status->result_json.find("(*, b2, *, *)"), std::string::npos);
  EXPECT_TRUE(manager.status(999).has_value() == false);
}

TEST(JobManager, ShedsLoadWhenTheQueueIsFull) {
  svc::JobManager manager({.queue_capacity = 2, .workers = 1});
  manager.pause();  // workers idle: the queue fills deterministically
  ASSERT_TRUE(manager.submit(demoJob()).isOk());
  ASSERT_TRUE(manager.submit(demoJob()).isOk());
  EXPECT_EQ(manager.queueDepth(), 2u);

  const auto rejected = manager.submit(demoJob());
  ASSERT_FALSE(rejected.isOk());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kOutOfRange);

  manager.resume();
  manager.drain();
  EXPECT_EQ(manager.queueDepth(), 0u);
  for (const auto& job : manager.list()) {
    EXPECT_EQ(job.state, svc::JobState::kDone);
  }
}

TEST(JobManager, FailsJobsWithInvalidConfigInsteadOfAborting) {
  svc::JobManager manager({.queue_capacity = 4, .workers = 1});
  auto request = demoJob();
  request.miner.search.t_conf = 42.0;  // out of range: Builder rejects
  const auto id = manager.submit(std::move(request));
  ASSERT_TRUE(id.isOk());
  manager.drain();
  const auto status = manager.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, svc::JobState::kFailed);
  EXPECT_NE(status->error.find("t_conf"), std::string::npos);
}

TEST(JobManager, ServesIdenticalResubmissionsFromTheCache) {
  svc::ResultCache cache({.capacity = 8, .ttl_seconds = 0.0});
  svc::JobManager manager({.queue_capacity = 8, .workers = 1}, &cache);

  const auto first = manager.executeInline(demoJob(/*cache_key=*/77));
  ASSERT_TRUE(first.isOk()) << first.status().toString();
  const auto second = manager.executeInline(demoJob(/*cache_key=*/77));
  ASSERT_TRUE(second.isOk());
  // Bit-identical replay of the stored document.
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);

  // Queued path hits the same cache.
  const auto id = manager.submit(demoJob(/*cache_key=*/77));
  ASSERT_TRUE(id.isOk());
  manager.drain();
  const auto status = manager.status(*id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, svc::JobState::kDone);
  EXPECT_TRUE(status->cache_hit);
  EXPECT_EQ(status->result_json, *first);
}

// ---------------------------------------------------------------------------
// LocalizeService HTTP handlers.

svc::LocalizeService::Options smallServiceOptions() {
  svc::LocalizeService::Options options;
  options.jobs.queue_capacity = 2;
  options.jobs.workers = 1;
  options.jobs.retry_after_seconds = 2.0;
  return options;
}

TEST(LocalizeService, SyncPostMatchesTheCsvLocalizePipeline) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());

  const auto table = demoTable(schema);
  const auto response = service.handleLocalize(postRequest(csvBodyOf(table)));
  ASSERT_EQ(response.status, 200) << response.body;

  // Reference pipeline: exactly what examples/csv_localize does with the
  // same defaults (detect at 0.095, RapMinerConfig{} thresholds, k=5).
  dataset::LeafTable reference = table;
  detect::RelativeDeviationDetector(0.095).run(reference);
  const auto expected =
      core::RapMiner(core::RapMinerConfig{}).localize(reference, 5);
  // Root-cause sets must match exactly; the stats tail carries wall-clock
  // stage timings, so only the patterns portion is comparable.
  EXPECT_EQ(patternsOf(response.body),
            patternsOf(io::resultToJson(schema, expected)));
  EXPECT_NE(response.body.find("(*, b2, *, *)"), std::string::npos);

  const auto* cache_state = headerOf(response, "X-Rap-Cache");
  ASSERT_NE(cache_state, nullptr);
  EXPECT_EQ(*cache_state, "miss");
}

TEST(LocalizeService, IdenticalResubmissionIsABitIdenticalCacheHit) {
  const auto schema = dataset::Schema::tiny();
  obs::setMetricsEnabled(true);
  // The service labels its series with its tenant ("default" here).
  auto& hits = obs::defaultRegistry().counter("rap_svc_cache_hits_total",
                                              {{"tenant", "default"}});
  const std::uint64_t hits_before = hits.value();

  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());
  const std::string body = csvBodyOf(demoTable(schema));

  const auto first = service.handleLocalize(postRequest(body));
  ASSERT_EQ(first.status, 200);

  // Second identical POST: no parsing, no search — assert via spans.
  obs::setTracingEnabled(true);
  obs::defaultTraceRecorder().clear();
  const auto second = service.handleLocalize(postRequest(body));
  obs::setTracingEnabled(false);

  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(second.body, first.body);  // bit-identical
  const auto* cache_state = headerOf(second, "X-Rap-Cache");
  ASSERT_NE(cache_state, nullptr);
  EXPECT_EQ(*cache_state, "hit");
  EXPECT_EQ(hits.value(), hits_before + 1);
  for (const auto& event : obs::defaultTraceRecorder().snapshotEvents()) {
    EXPECT_STRNE(event.name, "svc/execute");
    EXPECT_STRNE(event.name, "localize");
    EXPECT_STRNE(event.name, "localize/search");
  }
  obs::setMetricsEnabled(false);
}

TEST(LocalizeService, JsonBodyProducesTheSameResultAsCsv) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());
  const auto table = demoTable(schema);

  const auto from_csv = service.handleLocalize(postRequest(csvBodyOf(table)));
  const auto from_json = service.handleLocalize(
      postRequest(jsonBodyOf(table), "", "application/json"));
  ASSERT_EQ(from_csv.status, 200) << from_csv.body;
  ASSERT_EQ(from_json.status, 200) << from_json.body;
  EXPECT_EQ(patternsOf(from_csv.body), patternsOf(from_json.body));
  EXPECT_NE(from_json.body.find("(*, b2, *, *)"), std::string::npos);
}

TEST(LocalizeService, AsyncModeRunsThroughTheJobApi) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());

  const auto accepted = service.handleLocalize(
      postRequest(csvBodyOf(demoTable(schema)), "mode=async&priority=3"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  EXPECT_NE(accepted.body.find("\"job_id\":1"), std::string::npos);
  EXPECT_NE(accepted.body.find("\"status_url\":\"/api/v1/jobs/1\""),
            std::string::npos);
  service.jobs().drain();

  obs::HttpRequest get;
  get.method = "GET";
  get.path = "/api/v1/jobs/1";
  const auto job = service.handleJobGet(get);
  ASSERT_EQ(job.status, 200) << job.body;
  EXPECT_NE(job.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(job.body.find("\"priority\":3"), std::string::npos);
  EXPECT_NE(job.body.find("(*, b2, *, *)"), std::string::npos);

  obs::HttpRequest list;
  list.method = "GET";
  list.path = "/api/v1/jobs";
  const auto listing = service.handleJobsList(list);
  EXPECT_EQ(listing.status, 200);
  EXPECT_NE(listing.body.find("\"job_id\":1"), std::string::npos);
  EXPECT_NE(listing.body.find("\"queue_depth\":0"), std::string::npos);

  get.path = "/api/v1/jobs/999";
  EXPECT_EQ(service.handleJobGet(get).status, 404);
  get.path = "/api/v1/jobs/abc";
  EXPECT_EQ(service.handleJobGet(get).status, 400);
}

TEST(LocalizeService, FullQueueYields429WithRetryAfter) {
  const auto schema = dataset::Schema::tiny();
  obs::setMetricsEnabled(true);
  auto& rejected = obs::defaultRegistry().counter(
      "rap_svc_admission_rejected_total", {{"tenant", "default"}});
  const std::uint64_t rejected_before = rejected.value();

  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());
  service.jobs().pause();

  // Distinct bodies (t_conf varies) so nothing is served from the cache.
  const std::string body = csvBodyOf(demoTable(schema));
  ASSERT_EQ(service.handleLocalize(postRequest(body, "mode=async&t_conf=0.7"))
                .status,
            202);
  ASSERT_EQ(service.handleLocalize(postRequest(body, "mode=async&t_conf=0.8"))
                .status,
            202);

  const auto shed =
      service.handleLocalize(postRequest(body, "mode=async&t_conf=0.9"));
  EXPECT_EQ(shed.status, 429);
  EXPECT_NE(shed.body.find("job queue full"), std::string::npos);
  const auto* retry_after = headerOf(shed, "Retry-After");
  ASSERT_NE(retry_after, nullptr);
  // Jittered over [base, 2*base): an integral header within the bounds,
  // never the bare base for every client at once.
  const double retry_seconds = std::stod(*retry_after);
  EXPECT_GE(retry_seconds, 2.0);
  EXPECT_LE(retry_seconds, 4.0);
  EXPECT_EQ(rejected.value(), rejected_before + 1);

  service.jobs().resume();
  service.jobs().drain();
  obs::setMetricsEnabled(false);
}

TEST(LocalizeService, RejectsBadOverridesAndBodiesWith400) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService service(schema, core::RapMinerConfig{},
                               smallServiceOptions());
  const std::string body = csvBodyOf(demoTable(schema));

  EXPECT_EQ(service.handleLocalize(postRequest(body, "k=abc")).status, 400);
  EXPECT_EQ(service.handleLocalize(postRequest(body, "t_conf=nope")).status,
            400);
  EXPECT_EQ(service.handleLocalize(postRequest(body, "t_conf=1.5")).status,
            400);
  EXPECT_EQ(service.handleLocalize(postRequest(body, "t_cp=-1")).status, 400);
  EXPECT_EQ(service.handleLocalize(postRequest(body, "mode=banana")).status,
            400);
  EXPECT_EQ(service.handleLocalize(postRequest(body, "deadline=-3")).status,
            400);

  EXPECT_EQ(service.handleLocalize(postRequest("not,a,leaf\ntable\n")).status,
            400);
  EXPECT_EQ(
      service.handleLocalize(postRequest("{broken", "", "application/json"))
          .status,
      400);
}

// ---------------------------------------------------------------------------
// Multi-tenant serving plane: DatasetCatalog + TenantRouter.

/// Degrades every leaf whose first slot is element 0 — a schema-generic
/// incident so tenants with different schemas get comparable snapshots.
dataset::LeafTable incidentTable(const dataset::Schema& schema) {
  dataset::LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const double f = 50.0 + static_cast<double>(i % 7) * 10.0;
    const double v = leaf.slot(0) == 0 ? f * 0.3 : f;
    table.addRow(leaf, v, f, /*anomalous=*/false);
  }
  return table;
}

obs::HttpRequest routerRequest(const std::string& method,
                               const std::string& path,
                               std::string body = "",
                               const std::string& query = "") {
  obs::HttpRequest request;
  request.method = method;
  request.path = path;
  request.query = query;
  request.body = std::move(body);
  return request;
}

svc::TenantSpec specOf(const std::string& name, dataset::Schema schema) {
  svc::TenantSpec spec;
  spec.name = name;
  spec.schema = std::move(schema);
  return spec;
}

TEST(TenantCatalog, TwoSchemasServeConcurrentlyBitIdenticalToSingleTenant) {
  const auto tiny = dataset::Schema::tiny();
  const auto wide = dataset::Schema::synthetic({4, 3, 2});

  // Single-tenant references, computed before the catalog exists.
  svc::LocalizeService ref_tiny(tiny, core::RapMinerConfig{});
  svc::LocalizeService ref_wide(wide, core::RapMinerConfig{});
  const std::string body_tiny = csvBodyOf(incidentTable(tiny));
  const std::string body_wide = csvBodyOf(incidentTable(wide));
  const auto ref_response_tiny =
      ref_tiny.handleLocalize(postRequest(body_tiny, "mode=sync"));
  const auto ref_response_wide =
      ref_wide.handleLocalize(postRequest(body_wide, "mode=sync"));
  ASSERT_EQ(ref_response_tiny.status, 200);
  ASSERT_EQ(ref_response_wide.status, 200);

  svc::DatasetCatalog catalog({.pool_threads = 4});
  svc::TenantRouter router(catalog);
  ASSERT_TRUE(catalog.put(specOf("alpha", tiny)).isOk());
  ASSERT_TRUE(catalog.put(specOf("beta", wide)).isOk());

  // Hammer both tenants from concurrent clients; every response must be
  // bit-identical (modulo timing stats) to its single-tenant reference.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      const bool use_tiny = t % 2 == 0;
      const std::string& body = use_tiny ? body_tiny : body_wide;
      const std::string& want =
          use_tiny ? ref_response_tiny.body : ref_response_wide.body;
      const std::string path = use_tiny ? "/api/v1/tenants/alpha/localize"
                                        : "/api/v1/tenants/beta/localize";
      for (int i = 0; i < 8; ++i) {
        const auto response =
            router.route(routerRequest("POST", path, body, "mode=sync"));
        if (response.status != 200 ||
            patternsOf(response.body) != patternsOf(want)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(TenantCatalog, CachesJobsAndMetricsNeverLeakAcrossTenants) {
  obs::setMetricsEnabled(true);
  const auto tiny = dataset::Schema::tiny();
  auto& alpha_hits = obs::defaultRegistry().counter(
      "rap_svc_cache_hits_total", {{"tenant", "alpha"}});
  auto& beta_hits = obs::defaultRegistry().counter(
      "rap_svc_cache_hits_total", {{"tenant", "beta"}});
  const std::uint64_t alpha_before = alpha_hits.value();
  const std::uint64_t beta_before = beta_hits.value();

  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);
  ASSERT_TRUE(catalog.put(specOf("alpha", tiny)).isOk());
  ASSERT_TRUE(catalog.put(specOf("beta", tiny)).isOk());

  const std::string body = csvBodyOf(incidentTable(tiny));
  const auto first = router.route(routerRequest(
      "POST", "/api/v1/tenants/alpha/localize", body, "mode=sync"));
  const auto second = router.route(routerRequest(
      "POST", "/api/v1/tenants/alpha/localize", body, "mode=sync"));
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(*headerOf(first, "X-Rap-Cache"), "miss");
  EXPECT_EQ(*headerOf(second, "X-Rap-Cache"), "hit");

  // Identical body on the OTHER tenant: its own cache, so a miss.
  const auto other = router.route(routerRequest(
      "POST", "/api/v1/tenants/beta/localize", body, "mode=sync"));
  ASSERT_EQ(other.status, 200);
  EXPECT_EQ(*headerOf(other, "X-Rap-Cache"), "miss");

  EXPECT_EQ(alpha_hits.value(), alpha_before + 1);
  EXPECT_EQ(beta_hits.value(), beta_before);

  // Async jobs: per-tenant id spaces and listings.
  const auto alpha_job = router.route(routerRequest(
      "POST", "/api/v1/tenants/alpha/localize", body, "mode=async"));
  ASSERT_EQ(alpha_job.status, 202);
  EXPECT_NE(alpha_job.body.find(
                "\"status_url\":\"/api/v1/tenants/alpha/jobs/"),
            std::string::npos);
  catalog.find("alpha")->service->jobs().drain();

  const auto alpha_list =
      router.route(routerRequest("GET", "/api/v1/tenants/alpha/jobs"));
  const auto beta_list =
      router.route(routerRequest("GET", "/api/v1/tenants/beta/jobs"));
  ASSERT_EQ(alpha_list.status, 200);
  ASSERT_EQ(beta_list.status, 200);
  EXPECT_NE(alpha_list.body.find("\"job_id\":"), std::string::npos);
  EXPECT_EQ(beta_list.body.find("\"job_id\":"), std::string::npos);

  // Alpha's job is reachable under alpha only.
  const auto hit =
      router.route(routerRequest("GET", "/api/v1/tenants/alpha/jobs/1"));
  const auto cross =
      router.route(routerRequest("GET", "/api/v1/tenants/beta/jobs/1"));
  EXPECT_EQ(hit.status, 200);
  EXPECT_EQ(cross.status, 404);
  EXPECT_NE(cross.body.find("\"error\":{\"code\":\"not_found\""),
            std::string::npos);
}

TEST(TenantCatalog, AdmissionQuotaShedsPerTenant) {
  const auto tiny = dataset::Schema::tiny();
  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);

  auto small = specOf("small", tiny);
  small.service.jobs.queue_capacity = 1;
  ASSERT_TRUE(catalog.put(std::move(small)).isOk());
  ASSERT_TRUE(catalog.put(specOf("big", tiny)).isOk());

  // Freeze small's manager so its one queue slot fills deterministically.
  catalog.find("small")->service->jobs().pause();
  const std::string body = csvBodyOf(incidentTable(tiny));
  const auto admitted = router.route(routerRequest(
      "POST", "/api/v1/tenants/small/localize", body, "mode=async"));
  ASSERT_EQ(admitted.status, 202);
  const auto shed = router.route(routerRequest(
      "POST", "/api/v1/tenants/small/localize", body,
      "mode=async&priority=1"));
  EXPECT_EQ(shed.status, 429);
  EXPECT_NE(shed.body.find("\"error\":{\"code\":\"queue_full\""),
            std::string::npos);

  // The sibling tenant is untouched by small's full queue.
  const auto sibling = router.route(routerRequest(
      "POST", "/api/v1/tenants/big/localize", body, "mode=async"));
  EXPECT_EQ(sibling.status, 202);

  catalog.find("small")->service->jobs().resume();
  catalog.find("small")->service->jobs().drain();
  catalog.find("big")->service->jobs().drain();
}

TEST(TenantCatalog, DeleteDrainsInFlightJobsAndUnregisters) {
  const auto tiny = dataset::Schema::tiny();
  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);
  ASSERT_TRUE(catalog.put(specOf("default", tiny)).isOk());
  ASSERT_TRUE(catalog.put(specOf("doomed", tiny)).isOk());

  // Leave jobs in flight, then delete: the DELETE must drain them
  // before answering, and the name must be gone afterwards.
  const std::string body = csvBodyOf(incidentTable(tiny));
  for (int i = 0; i < 3; ++i) {
    const auto admitted = router.route(routerRequest(
        "POST", "/api/v1/tenants/doomed/localize", body, "mode=async"));
    ASSERT_EQ(admitted.status, 202);
  }
  const auto deleted =
      router.route(routerRequest("DELETE", "/api/v1/tenants/doomed"));
  EXPECT_EQ(deleted.status, 200);
  EXPECT_EQ(catalog.find("doomed"), nullptr);
  EXPECT_EQ(
      router.route(routerRequest("GET", "/api/v1/tenants/doomed")).status,
      404);

  // The protected default tenant stays.
  const auto forbidden =
      router.route(routerRequest("DELETE", "/api/v1/tenants/default"));
  EXPECT_EQ(forbidden.status, 403);
  EXPECT_NE(catalog.find("default"), nullptr);
}

TEST(TenantCatalog, RouterContractAndErrorEnvelopes) {
  const auto tiny = dataset::Schema::tiny();
  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);
  ASSERT_TRUE(catalog.put(specOf("default", tiny)).isOk());

  // Dynamic PUT, then duplicate -> 409 in the envelope shape.
  const std::string spec_json = "{\"schema\":{\"builtin\":\"tiny\"}}";
  const auto created = router.route(
      routerRequest("PUT", "/api/v1/tenants/edge-eu", spec_json));
  EXPECT_EQ(created.status, 201);
  const auto duplicate = router.route(
      routerRequest("PUT", "/api/v1/tenants/edge-eu", spec_json));
  EXPECT_EQ(duplicate.status, 409);
  EXPECT_NE(duplicate.body.find("\"error\":{\"code\":\"already_exists\""),
            std::string::npos);

  // Unknown tenant / bad name / unknown sub-resource / bad spec.
  EXPECT_EQ(router.route(routerRequest("GET", "/api/v1/tenants/ghost"))
                .status,
            404);
  EXPECT_EQ(router.route(routerRequest("GET", "/api/v1/tenants/bad!name"))
                .status,
            400);
  EXPECT_EQ(router
                .route(routerRequest("GET",
                                     "/api/v1/tenants/edge-eu/wat"))
                .status,
            404);
  const auto bad_spec = router.route(routerRequest(
      "PUT", "/api/v1/tenants/typo", "{\"schema\":{\"builtin\":\"tiny\"},"
                                     "\"t_pc\":0.1}"));
  EXPECT_EQ(bad_spec.status, 400);
  EXPECT_NE(bad_spec.body.find("unknown field"), std::string::npos);

  // Ingest needs a streaming tenant.
  const auto not_streaming = router.route(routerRequest(
      "POST", "/api/v1/tenants/edge-eu/ingest", "ts,a\n"));
  EXPECT_EQ(not_streaming.status, 409);
  EXPECT_NE(not_streaming.body.find("\"code\":\"not_streaming\""),
            std::string::npos);

  // Listing includes both tenants.
  const auto listing =
      router.handleTenantsList(routerRequest("GET", "/api/v1/tenants"));
  EXPECT_EQ(listing.status, 200);
  EXPECT_NE(listing.body.find("\"name\":\"default\""), std::string::npos);
  EXPECT_NE(listing.body.find("\"name\":\"edge-eu\""), std::string::npos);

  // /statusz carries a section per tenant.
  const auto statusz = router.handleStatusz(routerRequest("GET", "/statusz"));
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"tenant_count\":2"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"name\":\"edge-eu\""), std::string::npos);
}

TEST(TenantCatalog, StreamingTenantIngestsThroughTheRouter) {
  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);

  const std::string spec_json =
      "{\"schema\":{\"builtin\":\"tiny\"},"
      "\"streaming\":{\"shards\":1,\"window_width\":60,"
      "\"trigger\":\"every-window\",\"localize_threads\":1}}";
  const auto doc = svc::JsonValue::parse(spec_json);
  ASSERT_TRUE(doc.isOk());
  auto spec = svc::parseTenantSpec(*doc, "edge");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  ASSERT_TRUE(catalog.put(std::move(spec.value())).isOk());

  const auto tenant = catalog.find("edge");
  ASSERT_NE(tenant, nullptr);
  const auto engine = tenant->engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(engine->running());

  // Two windows of leaf rows for (a1, b1, c1, d1) and (a2, b1, c1, d1).
  const std::string rows =
      "ts,A,B,C,D,real,predict\n"
      "10,a1,b1,c1,d1,30,100\n"
      "10,a2,b1,c1,d1,95,100\n"
      "70,a1,b1,c1,d1,31,100\n";
  const auto accepted = router.route(routerRequest(
      "POST", "/api/v1/tenants/edge/ingest", rows));
  ASSERT_EQ(accepted.status, 200);
  EXPECT_NE(accepted.body.find("\"accepted\":3"), std::string::npos);

  // Malformed rows are a 400 with the line number, nothing ingested.
  const auto rejected = router.route(routerRequest(
      "POST", "/api/v1/tenants/edge/ingest", "10,a1,b1,c1,nope,1,2\n"));
  EXPECT_EQ(rejected.status, 400);
  EXPECT_NE(rejected.body.find("row 1"), std::string::npos);

  engine->drain();
  EXPECT_EQ(engine->stats().ingested, 3u);
  EXPECT_GE(engine->stats().windows_sealed, 1u);
}

// ---------------------------------------------------------------------------
// Crash-safe serving: overload guard, circuit breaker, job journal,
// degraded serving, and the engine supervisor.

TEST(OverloadGuard, ShedsOnlyAfterSustainedQueueDelay) {
  svc::OverloadGuard guard({.target_delay_seconds = 0.05,
                            .interval_seconds = 1.0});
  ASSERT_TRUE(guard.enabled());
  const auto t0 = svc::OverloadGuard::Clock::now();
  const auto at = [&](double s) {
    return t0 + std::chrono::duration_cast<
                    svc::OverloadGuard::Clock::duration>(
                    std::chrono::duration<double>(s));
  };

  // First over-target observation only starts the interval clock.
  EXPECT_FALSE(guard.shouldShedAt(0.2, at(0.0)));
  EXPECT_FALSE(guard.shouldShedAt(0.2, at(0.5)));
  // Sustained past the interval: shed.
  EXPECT_TRUE(guard.shouldShedAt(0.2, at(1.1)));
  EXPECT_TRUE(guard.shedding());
  // Queue drains below target: admission resumes, clock forgotten.
  EXPECT_FALSE(guard.shouldShedAt(0.01, at(1.2)));
  EXPECT_FALSE(guard.shedding());
  // A fresh burst must sustain a full interval again.
  EXPECT_FALSE(guard.shouldShedAt(0.2, at(1.3)));
  EXPECT_TRUE(guard.shouldShedAt(0.2, at(2.4)));

  svc::OverloadGuard disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.shouldShedAt(1e9, t0));
}

TEST(CircuitBreaker, ClosedOpenHalfOpenLifecycle) {
  svc::CircuitBreaker breaker({.failure_threshold = 3,
                               .open_seconds = 5.0,
                               .half_open_probes = 2});
  ASSERT_TRUE(breaker.enabled());
  const auto t0 = svc::CircuitBreaker::Clock::now();
  const auto at = [&](double s) {
    return t0 + std::chrono::duration_cast<
                    svc::CircuitBreaker::Clock::duration>(
                    std::chrono::duration<double>(s));
  };

  EXPECT_TRUE(breaker.allowAt(t0));
  breaker.recordFailureAt(t0);
  breaker.recordFailureAt(t0);
  EXPECT_EQ(breaker.state(), svc::BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutiveFailures(), 2u);
  // A success resets the consecutive count: failures must be truly
  // consecutive to open the breaker.
  breaker.recordSuccess();
  breaker.recordFailureAt(t0);
  breaker.recordFailureAt(t0);
  EXPECT_EQ(breaker.state(), svc::BreakerState::kClosed);
  breaker.recordFailureAt(t0);
  EXPECT_EQ(breaker.state(), svc::BreakerState::kOpen);

  // Open: everything shed until open_seconds elapse.
  EXPECT_FALSE(breaker.allowAt(at(1.0)));
  EXPECT_NEAR(breaker.secondsUntilProbeAt(at(1.0)), 4.0, 1e-9);
  // Half-open: exactly half_open_probes admissions.
  EXPECT_TRUE(breaker.allowAt(at(5.5)));
  EXPECT_EQ(breaker.state(), svc::BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allowAt(at(5.6)));
  EXPECT_FALSE(breaker.allowAt(at(5.7)));
  // Both probes succeed: closed again.
  breaker.recordSuccess();
  EXPECT_EQ(breaker.state(), svc::BreakerState::kHalfOpen);
  breaker.recordSuccess();
  EXPECT_EQ(breaker.state(), svc::BreakerState::kClosed);

  // A failed probe reopens immediately (no threshold in half-open).
  breaker.tripAt(at(10.0));
  EXPECT_EQ(breaker.state(), svc::BreakerState::kOpen);
  EXPECT_TRUE(breaker.allowAt(at(16.0)));
  breaker.recordFailureAt(at(16.1));
  EXPECT_EQ(breaker.state(), svc::BreakerState::kOpen);
  EXPECT_FALSE(breaker.allowAt(at(16.2)));

  svc::CircuitBreaker disabled(svc::CircuitBreaker::Options{});
  EXPECT_FALSE(disabled.enabled());
  disabled.recordFailure();
  disabled.trip();
  EXPECT_TRUE(disabled.allow());
  EXPECT_EQ(disabled.state(), svc::BreakerState::kClosed);
}

TEST(ResultCache, PeekStaleIgnoresTtlAndTouchesNothing) {
  svc::ResultCache cache({.capacity = 4, .ttl_seconds = 10.0});
  const auto t0 = Clock::now();
  cache.putAt(7, "doc", t0);
  // Past TTL: getAt expires the entry's *lookup*, peekStale still serves.
  EXPECT_TRUE(cache.peekStale(7).has_value());
  const auto later = t0 + std::chrono::seconds(60);
  EXPECT_EQ(cache.peekStale(7).value(), "doc");
  const auto before = cache.stats();
  EXPECT_FALSE(cache.peekStale(99).has_value());
  const auto after = cache.stats();
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
  EXPECT_FALSE(cache.getAt(7, later).has_value());  // TTL still enforced
}

/// Temp-dir fixture for journal files.
class JournalDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rap_svc_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

TEST_F(JournalDir, AppendCompleteRecoverAndCompact) {
  const std::string file = path("jobs.rapjrnl");
  svc::JobJournal::Record record;
  record.tenant = "default";
  record.priority = 2;
  record.content_type = "csv";
  record.query = "mode=async&k=3";
  record.body = "A,B,real,predict\na1,b1,1,2\n";  // newlines survive framing

  {
    auto journal = svc::JobJournal::open({.path = file});
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    const auto first = (*journal)->append(record);
    ASSERT_TRUE(first.isOk());
    record.query = "mode=async&k=4";
    const auto second = (*journal)->append(record);
    ASSERT_TRUE(second.isOk());
    EXPECT_GT(*second, *first);
    (*journal)->complete(*first, "done");
    EXPECT_EQ((*journal)->liveCount(), 1u);
  }

  // Reopen: the completed record is gone, the live one is intact
  // byte-for-byte, and ids never rewind.
  {
    auto journal = svc::JobJournal::open({.path = file});
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    ASSERT_EQ((*journal)->liveCount(), 1u);
    const auto pending = (*journal)->pending();
    EXPECT_EQ(pending[0].query, "mode=async&k=4");
    EXPECT_EQ(pending[0].body, record.body);
    EXPECT_EQ(pending[0].priority, 2);
    EXPECT_EQ(pending[0].tenant, "default");
    const auto next = (*journal)->append(record);
    ASSERT_TRUE(next.isOk());
    EXPECT_GT(*next, pending[0].id);
    EXPECT_EQ((*journal)->recoveryDropped(), 0u);
  }

  // A torn tail (crash mid-append) drops only the damage.
  {
    std::ofstream out(file, std::ios::binary | std::ios::app);
    out << "A 99 default 0 csv 00ff 5 5\ntorn";
  }
  {
    auto journal = svc::JobJournal::open({.path = file});
    ASSERT_TRUE(journal.isOk()) << journal.status().toString();
    EXPECT_EQ((*journal)->liveCount(), 2u);
    EXPECT_GT((*journal)->recoveryDropped(), 0u);
  }

  // Never adopt (and later overwrite) a file that was not ours.
  const std::string foreign = path("not_a_journal");
  { std::ofstream(foreign) << "something else entirely\n"; }
  EXPECT_FALSE(svc::JobJournal::open({.path = foreign}).isOk());
}

TEST_F(JournalDir, ReplayedCompletedWorkIsBitIdenticalViaTheCache) {
  const auto schema = dataset::Schema::tiny();
  auto journal = svc::JobJournal::open({.path = path("jobs.rapjrnl")});
  ASSERT_TRUE(journal.isOk());

  svc::LocalizeService::Options options = smallServiceOptions();
  options.journal = journal->get();
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);

  // The original admission ran to completion and filled the cache, but
  // the crash ate its C record.  (Same body + overrides = same key.)
  const std::string body = csvBodyOf(demoTable(schema));
  const auto original = service.handleLocalize(postRequest(body));
  ASSERT_EQ(original.status, 200);

  svc::JobJournal::Record record;
  record.tenant = "default";
  record.content_type = "csv";
  record.query = "mode=async";
  record.body = body;
  const auto record_id = (*journal)->append(record);
  ASSERT_TRUE(record_id.isOk());
  record.id = *record_id;

  const auto job = service.replayJob(record);
  ASSERT_TRUE(job.isOk()) << job.status().toString();
  service.jobs().drain();

  const auto status = service.jobs().status(*job);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, svc::JobState::kDone);
  EXPECT_TRUE(status->cache_hit);
  // Bit-identical to the original response, stats tail included.
  EXPECT_EQ(status->result_json, original.body);
  // on_terminal wrote the completion marker.
  EXPECT_EQ((*journal)->liveCount(), 0u);
}

TEST_F(JournalDir, KillDashNineLosesNoAcceptedJobs) {
  const auto schema = dataset::Schema::tiny();
  const std::string file = path("jobs.rapjrnl");
  const std::string body = csvBodyOf(demoTable(schema));
  constexpr int kJobs = 8;
  const auto queryOf = [](int i) {
    return util::strFormat("mode=async&t_conf=0.7%d", i);  // distinct keys
  };

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: accept kJobs async admissions with workers paused (so none
    // executes), then die hard.  No gtest machinery after fork — plain
    // _exit codes signal setup failures.
    auto journal = svc::JobJournal::open({.path = file});
    if (!journal.isOk()) _exit(10);
    svc::LocalizeService::Options options;
    options.jobs.queue_capacity = kJobs + 4;
    options.jobs.workers = 1;
    options.journal = journal->get();
    svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
    service.jobs().pause();
    for (int i = 0; i < kJobs; ++i) {
      if (service.handleLocalize(postRequest(body, queryOf(i))).status != 202) {
        _exit(11);
      }
    }
    ::raise(SIGKILL);
    _exit(12);  // unreachable
  }

  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);

  // Restart: every accepted job replays and reaches a terminal state.
  auto journal = svc::JobJournal::open({.path = file});
  ASSERT_TRUE(journal.isOk()) << journal.status().toString();
  EXPECT_EQ((*journal)->liveCount(), static_cast<std::size_t>(kJobs));

  svc::DatasetCatalog catalog({.pool_threads = 2, .journal = journal->get()});
  svc::TenantSpec spec = specOf("default", schema);
  ASSERT_TRUE(catalog.put(std::move(spec)).isOk());
  const auto replay = svc::replayJournal(**journal, catalog);
  EXPECT_EQ(replay.replayed, static_cast<std::size_t>(kJobs));
  EXPECT_EQ(replay.dropped, 0u);

  const auto tenant = catalog.find("default");
  ASSERT_NE(tenant, nullptr);
  tenant->service->jobs().drain();
  EXPECT_EQ((*journal)->liveCount(), 0u);  // all terminal, all marked

  // Each replayed job renders the same root causes the uninterrupted
  // service would have: compare against a fresh reference execution.
  svc::LocalizeService reference(schema, core::RapMinerConfig{},
                                 smallServiceOptions());
  const auto jobs = tenant->service->jobs().list();
  ASSERT_EQ(jobs.size(), static_cast<std::size_t>(kJobs));
  for (const svc::JobStatus& job : jobs) {
    ASSERT_EQ(job.state, svc::JobState::kDone) << job.error;
  }
  // list() order is not the admission order, so match every reference
  // result against the replayed set by its pattern portion.
  for (int i = 0; i < kJobs; ++i) {
    const auto expected = reference.handleLocalize(
        postRequest(body, util::strFormat("mode=sync&t_conf=0.7%d", i)));
    ASSERT_EQ(expected.status, 200);
    bool matched = false;
    for (const svc::JobStatus& job : jobs) {
      if (patternsOf(job.result_json) == patternsOf(expected.body)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "no replayed job matches t_conf=0.7" << i;
  }
}

TEST(LocalizeService, DeadlineValidatedAndClampedToTenantMax) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService::Options options = smallServiceOptions();
  options.max_deadline_seconds = 1.5;
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  const std::string body = csvBodyOf(demoTable(schema));

  EXPECT_EQ(service.handleLocalize(postRequest(body, "deadline=-1")).status,
            400);

  // Above the cap: clamped, and the effective value is surfaced in the
  // job document so callers see the budget their job actually ran with.
  const auto accepted = service.handleLocalize(
      postRequest(body, "mode=async&deadline=99"));
  ASSERT_EQ(accepted.status, 202) << accepted.body;
  service.jobs().drain();
  obs::HttpRequest get;
  get.method = "GET";
  get.path = "/api/v1/jobs/1";
  const auto job = service.handleJobGet(get);
  ASSERT_EQ(job.status, 200);
  EXPECT_NE(job.body.find("\"deadline_seconds\":1.500000"),
            std::string::npos)
      << job.body;

  // deadline=0 ("unbounded") clamps too: no request outlives the cap.
  const auto unbounded = service.handleLocalize(
      postRequest(body, "mode=async&deadline=0&t_conf=0.7"));
  ASSERT_EQ(unbounded.status, 202) << unbounded.body;
  service.jobs().drain();
  get.path = "/api/v1/jobs/2";
  EXPECT_NE(service.handleJobGet(get).body.find(
                "\"deadline_seconds\":1.500000"),
            std::string::npos);
}

TEST(LocalizeService, OpenBreakerServesStaleOrShedsWithRetryAfter) {
  const auto schema = dataset::Schema::tiny();
  obs::setMetricsEnabled(true);
  auto& degraded = obs::defaultRegistry().counter(
      "rap_svc_degraded_served_total", {{"tenant", "default"}});
  const std::uint64_t degraded_before = degraded.value();

  svc::LocalizeService::Options options = smallServiceOptions();
  options.breaker.failure_threshold = 1;
  // TTL so small the cached entry is stale by the time the breaker
  // serves it — degraded serving ignores TTL on purpose.
  options.cache.ttl_seconds = 1e-9;
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  const std::string body = csvBodyOf(demoTable(schema));

  const auto original = service.handleLocalize(postRequest(body));
  ASSERT_EQ(original.status, 200);

  service.breaker().trip();
  ASSERT_EQ(service.breaker().state(), svc::BreakerState::kOpen);

  // Known request: 200 from the (stale) cache, flagged degraded,
  // bit-identical to the original document.
  const auto stale = service.handleLocalize(postRequest(body));
  EXPECT_EQ(stale.status, 200);
  EXPECT_EQ(stale.body, original.body);
  const auto* degraded_header = headerOf(stale, "X-Rap-Degraded");
  ASSERT_NE(degraded_header, nullptr);
  EXPECT_EQ(*degraded_header, "stale");
  EXPECT_EQ(degraded.value(), degraded_before + 1);

  // Unknown request: shed with the tenant_unavailable envelope and a
  // jittered Retry-After.
  const auto shed =
      service.handleLocalize(postRequest(body, "t_conf=0.7"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("tenant_unavailable"), std::string::npos);
  const auto* retry_after = headerOf(shed, "Retry-After");
  ASSERT_NE(retry_after, nullptr);
  const double retry_seconds = std::stod(*retry_after);
  EXPECT_GE(retry_seconds, 2.0);
  EXPECT_LE(retry_seconds, 4.0);
  obs::setMetricsEnabled(false);
}

TEST(LocalizeService, HalfOpenProbeClosesTheBreakerOnSuccess) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService::Options options = smallServiceOptions();
  options.breaker.failure_threshold = 1;
  options.breaker.open_seconds = 0.05;
  options.breaker.half_open_probes = 1;
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  const std::string body = csvBodyOf(demoTable(schema));

  service.breaker().trip();
  EXPECT_EQ(service.handleLocalize(postRequest(body)).status, 503);

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // The probe request runs for real; its success closes the breaker.
  const auto probe = service.handleLocalize(postRequest(body));
  EXPECT_EQ(probe.status, 200);
  EXPECT_EQ(service.breaker().state(), svc::BreakerState::kClosed);
  EXPECT_EQ(service.handleLocalize(postRequest(body)).status, 200);
}

TEST(JobManager, OverloadGuardShedsWithUnavailable) {
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService::Options options = smallServiceOptions();
  options.jobs.queue_capacity = 16;
  options.jobs.overload.target_delay_seconds = 0.01;
  options.jobs.overload.interval_seconds = 0.05;
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  service.jobs().pause();  // head-of-line delay grows unboundedly
  const std::string body = csvBodyOf(demoTable(schema));

  ASSERT_EQ(
      service.handleLocalize(postRequest(body, "mode=async&t_conf=0.7"))
          .status,
      202);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Over target, inside the interval: still admitted.
  ASSERT_EQ(
      service.handleLocalize(postRequest(body, "mode=async&t_conf=0.8"))
          .status,
      202);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Sustained a full interval: shed with the `overloaded` envelope.
  const auto shed =
      service.handleLocalize(postRequest(body, "mode=async&t_conf=0.9"));
  EXPECT_EQ(shed.status, 429);
  EXPECT_NE(shed.body.find("overloaded"), std::string::npos);
  EXPECT_NE(headerOf(shed, "Retry-After"), nullptr);

  service.jobs().resume();
  service.jobs().drain();
  // Queue drained: admission recovers.
  EXPECT_EQ(
      service.handleLocalize(postRequest(body, "mode=async&t_conf=0.85"))
          .status,
      202);
  service.jobs().drain();
}

TEST_F(JournalDir, SupervisorRestartsCrashedEngineFromCheckpoint) {
  svc::DatasetCatalog catalog({.pool_threads = 2});
  const std::string checkpoint = path("engine.rapchkpt");

  const std::string spec_json =
      "{\"schema\":{\"builtin\":\"tiny\"},"
      "\"streaming\":{\"shards\":1,\"window_width\":60,"
      "\"localize_threads\":1,"
      "\"checkpoint_path\":\"" + checkpoint + "\"}}";
  const auto doc = svc::JsonValue::parse(spec_json);
  ASSERT_TRUE(doc.isOk());
  auto spec = svc::parseTenantSpec(*doc, "edge");
  ASSERT_TRUE(spec.isOk()) << spec.status().toString();
  EXPECT_EQ(spec->checkpoint_path, checkpoint);
  ASSERT_TRUE(catalog.put(std::move(spec.value())).isOk());

  const auto tenant = catalog.find("edge");
  ASSERT_NE(tenant, nullptr);
  const auto original = tenant->engine();
  ASSERT_NE(original, nullptr);

  // Ingest one window, checkpoint it, then "crash".
  stream::StreamEvent event;
  event.ts = 10;
  event.leaf = dataset::AttributeCombination({0, 0, 0, 0});
  event.v = 30.0;
  event.f = 100.0;
  ASSERT_EQ(original->ingest(event).accepted, 1u);
  ASSERT_TRUE(original->checkpoint(checkpoint).isOk());
  original->stop();

  svc::EngineSupervisor supervisor(catalog, {.max_restarts = 3});
  const auto t0 = std::chrono::steady_clock::now();
  supervisor.sweepAt(t0);

  const auto restarted = tenant->engine();
  ASSERT_NE(restarted, nullptr);
  EXPECT_NE(restarted.get(), original.get());
  EXPECT_TRUE(restarted->running());
  EXPECT_EQ(supervisor.stats().restarts, 1u);
  EXPECT_EQ(supervisor.stats().restores, 1u);  // seeded from the checkpoint
  EXPECT_FALSE(tenant->quarantined());

  // A healthy sweep resets the failure budget (and the engine ingests).
  supervisor.sweepAt(t0 + std::chrono::seconds(1));
  ASSERT_EQ(restarted->ingest(event).accepted, 1u);
}

TEST(EngineSupervisor, QuarantinesACrashLoopingTenant) {
  svc::DatasetCatalog catalog({.pool_threads = 2});
  svc::TenantRouter router(catalog);
  const std::string spec_json =
      "{\"schema\":{\"builtin\":\"tiny\"},"
      "\"streaming\":{\"shards\":1,\"window_width\":60,"
      "\"localize_threads\":1}}";
  const auto doc = svc::JsonValue::parse(spec_json);
  auto spec = svc::parseTenantSpec(*doc, "flaky");
  ASSERT_TRUE(spec.isOk());
  ASSERT_TRUE(catalog.put(std::move(spec.value())).isOk());
  const auto tenant = catalog.find("flaky");

  svc::EngineSupervisor supervisor(
      catalog, {.backoff_initial_seconds = 0.1, .max_restarts = 2});
  auto now = std::chrono::steady_clock::now();

  // Crash-loop: every restart is dead again by the next sweep.
  std::size_t sweeps = 0;
  while (!tenant->quarantined() && sweeps < 32) {
    if (auto engine = tenant->engine()) engine->stop();
    supervisor.sweepAt(now);
    now += std::chrono::seconds(1);  // outruns every backoff
    ++sweeps;
  }
  EXPECT_TRUE(tenant->quarantined());
  EXPECT_GE(supervisor.stats().failures, 2u);
  EXPECT_EQ(supervisor.stats().quarantines, 1u);

  // Quarantined tenants shed sub-resource requests with 503.
  const auto shed = router.route(
      routerRequest("POST", "/api/v1/tenants/flaky/ingest", "x"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("tenant_unavailable"), std::string::npos);
  // The tenant resource itself (GET) still answers, showing the state.
  const auto detail =
      router.route(routerRequest("GET", "/api/v1/tenants/flaky"));
  EXPECT_EQ(detail.status, 200);
  EXPECT_NE(detail.body.find("\"quarantined\":true"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-gated chaos coverage (compiled in only with RAP_FAULT_INJECTION).

class SvcFault : public JournalDir {
 protected:
  void SetUp() override {
    JournalDir::SetUp();
    fault::Registry::instance().reset();
  }
  void TearDown() override {
    fault::Registry::instance().reset();
    JournalDir::TearDown();
  }
};

TEST_F(SvcFault, JournalAppendFaultShedsWith503) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const auto schema = dataset::Schema::tiny();
  auto journal = svc::JobJournal::open({.path = path("jobs.rapjrnl")});
  ASSERT_TRUE(journal.isOk());
  svc::LocalizeService::Options options = smallServiceOptions();
  options.journal = journal->get();
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  const std::string body = csvBodyOf(demoTable(schema));

  const auto armed = fault::armFromSpec("svc.journal.append=error");
  ASSERT_TRUE(armed.isOk()) << armed.status().toString();
  EXPECT_EQ(armed.value(), 1);

  const auto shed = service.handleLocalize(postRequest(body, "mode=async"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.body.find("journal_unavailable"), std::string::npos);
  EXPECT_NE(headerOf(shed, "Retry-After"), nullptr);
  EXPECT_EQ((*journal)->liveCount(), 0u);  // nothing half-accepted

  // Sync requests never touch the journal: unaffected.
  fault::Registry::instance().reset();
  EXPECT_EQ(service.handleLocalize(postRequest(body)).status, 200);
}

TEST_F(SvcFault, ReplayFaultDropsRecordsInsteadOfAbortingStartup) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const auto schema = dataset::Schema::tiny();
  const std::string file = path("jobs.rapjrnl");
  {
    auto journal = svc::JobJournal::open({.path = file});
    ASSERT_TRUE(journal.isOk());
    svc::JobJournal::Record record;
    record.tenant = "default";
    record.content_type = "csv";
    record.query = "mode=async";
    record.body = csvBodyOf(demoTable(schema));
    ASSERT_TRUE((*journal)->append(record).isOk());
  }

  auto journal = svc::JobJournal::open({.path = file});
  ASSERT_TRUE(journal.isOk());
  svc::DatasetCatalog catalog({.pool_threads = 2, .journal = journal->get()});
  ASSERT_TRUE(catalog.put(specOf("default", schema)).isOk());

  ASSERT_TRUE(fault::armFromSpec("svc.journal.replay=error").isOk());
  const auto replay = svc::replayJournal(**journal, catalog);
  EXPECT_EQ(replay.replayed, 0u);
  EXPECT_EQ(replay.dropped, 1u);
  EXPECT_EQ((*journal)->liveCount(), 0u);  // completed as "dropped"
}

TEST_F(SvcFault, BreakerFaultTripsTheBreakerOpen) {
  if (!fault::kCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  const auto schema = dataset::Schema::tiny();
  svc::LocalizeService::Options options = smallServiceOptions();
  options.breaker.failure_threshold = 100;  // would never open on its own
  svc::LocalizeService service(schema, core::RapMinerConfig{}, options);
  const std::string body = csvBodyOf(demoTable(schema));

  ASSERT_TRUE(fault::armFromSpec("svc.breaker=error:1:7:0:0:1").isOk());
  const auto shed = service.handleLocalize(postRequest(body));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(service.breaker().state(), svc::BreakerState::kOpen);
}

TEST(FaultSpec, ArmFromSpecParsesAndRejects) {
  fault::Registry::instance().reset();
  const auto armed =
      fault::armFromSpec("svc.tenant=error; svc.journal.append=drop:0.5:42");
  ASSERT_TRUE(armed.isOk()) << armed.status().toString();
  EXPECT_EQ(armed.value(), 2);

  EXPECT_FALSE(fault::armFromSpec("missing-equals").isOk());
  EXPECT_FALSE(fault::armFromSpec("p=banana").isOk());
  EXPECT_FALSE(fault::armFromSpec("p=error:1.5").isOk());
  EXPECT_FALSE(fault::armFromSpec("p=error:0.5:-1").isOk());
  fault::Registry::instance().reset();
}

}  // namespace
}  // namespace rap
