// Shape-regression suite: pins the qualitative results of the paper's
// evaluation (who wins, roughly by how much) on reduced workloads so a
// refactor that silently breaks an algorithm fails CI, not the bench
// review.  Thresholds are deliberately loose — they encode the paper's
// ordering claims, not exact numbers.
#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/runner.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"

namespace rap {
namespace {

constexpr std::uint64_t kSeed = 20220627;

struct RapmdScores {
  double rapminer = 0.0;
  double adtributor = 0.0;
  double idice = 0.0;
  double fp_growth = 0.0;
  double squeeze = 0.0;
};

const RapmdScores& rapmdRc3() {
  static const RapmdScores kScores = [] {
    gen::RapmdConfig config;
    config.num_cases = 40;
    config.label_noise = 0.02;
    gen::RapmdGenerator generator(dataset::Schema::cdn(), config, kSeed);
    const auto cases = generator.generate();

    RapmdScores scores;
    for (const auto& localizer : eval::standardLocalizers()) {
      const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
      const double rc3 = eval::aggregateRecallAtK(runs, cases, 3);
      if (localizer.name == "RAPMiner") scores.rapminer = rc3;
      if (localizer.name == "Adtributor") scores.adtributor = rc3;
      if (localizer.name == "iDice") scores.idice = rc3;
      if (localizer.name == "FP-growth") scores.fp_growth = rc3;
      if (localizer.name == "Squeeze") scores.squeeze = rc3;
    }
    return scores;
  }();
  return kScores;
}

TEST(ShapeRapmd, RapMinerAboveEightyPercentIsh) {
  // Paper: "RAPMiner achieves the best performance (above 80%)".
  EXPECT_GT(rapmdRc3().rapminer, 0.72);
}

TEST(ShapeRapmd, RapMinerBeatsEveryBaseline) {
  const auto& s = rapmdRc3();
  EXPECT_GT(s.rapminer, s.adtributor);
  EXPECT_GT(s.rapminer, s.idice);
  EXPECT_GT(s.rapminer, s.fp_growth);
  EXPECT_GT(s.rapminer, s.squeeze);
}

TEST(ShapeRapmd, RapMinerClearlyAheadOfRuleMining) {
  // Paper: "at least 10% higher than the sub-optimal method".
  EXPECT_GT(rapmdRc3().rapminer - rapmdRc3().fp_growth, 0.05);
}

TEST(ShapeRapmd, AssumptionBoundMethodsDegrade) {
  // Squeeze and Adtributor break on RAPMD (assumption mismatch).
  EXPECT_LT(rapmdRc3().squeeze, 0.5);
  EXPECT_LT(rapmdRc3().adtributor, 0.5);
}

TEST(ShapeSqueezeDataset, TopTierNearPerfectOnGroup11) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = 12;
  config.noise_sigma = gen::squeezeNoiseSigma(0);
  gen::SqueezeGenerator generator(config, kSeed);
  const auto group = generator.generateGroup(1, 1);
  for (const auto& localizer : eval::standardLocalizers()) {
    if (localizer.name == "iDice") continue;  // graded by dimension
    const auto runs =
        eval::runLocalizer(localizer, group.cases, {.k_equals_truth = true});
    const double f1 = eval::aggregateF1(runs, group.cases);
    if (localizer.name == "RAPMiner" || localizer.name == "Squeeze" ||
        localizer.name == "FP-growth" || localizer.name == "Adtributor") {
      EXPECT_GT(f1, 0.85) << localizer.name << " collapsed on (1,1)";
    }
  }
}

TEST(ShapeSqueezeDataset, AdtributorZeroBeyondOneDimension) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = 8;
  gen::SqueezeGenerator generator(config, kSeed);
  const auto group = generator.generateGroup(2, 1);
  const auto localizers = eval::standardLocalizers();
  for (const auto& localizer : localizers) {
    if (localizer.name != "Adtributor") continue;
    const auto runs =
        eval::runLocalizer(localizer, group.cases, {.k_equals_truth = true});
    EXPECT_LT(eval::aggregateF1(runs, group.cases), 0.2)
        << "Adtributor can only express 1-dimensional causes";
  }
}

TEST(ShapeSqueezeDataset, RapMinerHandlesEveryDimension) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = 8;
  config.noise_sigma = gen::squeezeNoiseSigma(0);
  gen::SqueezeGenerator generator(config, kSeed);
  for (std::int32_t dims = 1; dims <= 3; ++dims) {
    const auto group = generator.generateGroup(dims, 2);
    const auto localizer = eval::rapminerLocalizer({});
    const auto runs =
        eval::runLocalizer(localizer, group.cases, {.k_equals_truth = true});
    EXPECT_GT(eval::aggregateF1(runs, group.cases), 0.85)
        << "dims=" << dims;
  }
}

TEST(ShapeTable6, DeletionTradesRecallForTime) {
  gen::RapmdConfig config;
  config.num_cases = 30;
  config.label_noise = 0.02;
  gen::RapmdGenerator generator(dataset::Schema::cdn(), config, kSeed);
  const auto cases = generator.generate();

  core::RapMinerConfig with;
  core::RapMinerConfig without;
  without.cp.enable_attribute_deletion = false;
  const auto runs_with =
      eval::runLocalizer(eval::rapminerLocalizer(with), cases, {.k = 3});
  const auto runs_without =
      eval::runLocalizer(eval::rapminerLocalizer(without), cases, {.k = 3});

  const double rc_with = eval::aggregateRecallAtK(runs_with, cases, 3);
  const double rc_without = eval::aggregateRecallAtK(runs_without, cases, 3);
  const double t_with = eval::aggregateTiming(runs_with).mean();
  const double t_without = eval::aggregateTiming(runs_without).mean();

  EXPECT_LE(rc_with, rc_without + 1e-9);  // deletion never helps recall
  EXPECT_LT(t_with, t_without);           // but it buys time
  EXPECT_GT(rc_with, rc_without - 0.2);   // and the cost is bounded
}

}  // namespace
}  // namespace rap
