#include <gtest/gtest.h>

#include <algorithm>

#include "mining/fpgrowth.h"
#include "util/rng.h"

namespace rap::mining {
namespace {

std::uint64_t supportByScan(const std::vector<Transaction>& txns,
                            std::vector<Item> itemset) {
  std::sort(itemset.begin(), itemset.end());
  std::uint64_t support = 0;
  for (const auto& raw : txns) {
    Transaction txn = raw;
    std::sort(txn.begin(), txn.end());
    txn.erase(std::unique(txn.begin(), txn.end()), txn.end());
    if (std::includes(txn.begin(), txn.end(), itemset.begin(), itemset.end())) {
      ++support;
    }
  }
  return support;
}

TEST(FpGrowth, TextbookExample) {
  // Classic example: {1,2,5},{2,4},{2,3},{1,2,4},{1,3},{2,3},{1,3},
  // {1,2,3,5},{1,2,3}; min_support 2.
  const std::vector<Transaction> txns{{1, 2, 5}, {2, 4},    {2, 3},
                                      {1, 2, 4}, {1, 3},    {2, 3},
                                      {1, 3},    {1, 2, 3, 5}, {1, 2, 3}};
  FpGrowthOptions options;
  options.min_support = 2;
  const auto itemsets = mineFrequentItemsets(txns, options);

  auto find = [&itemsets](std::vector<Item> items) -> std::uint64_t {
    std::sort(items.begin(), items.end());
    for (const auto& fi : itemsets) {
      if (fi.items == items) return fi.support;
    }
    return 0;
  };
  EXPECT_EQ(find({2}), 7u);
  EXPECT_EQ(find({1}), 6u);
  EXPECT_EQ(find({3}), 6u);
  EXPECT_EQ(find({1, 2}), 4u);
  EXPECT_EQ(find({1, 3}), 4u);
  EXPECT_EQ(find({2, 5}), 2u);
  EXPECT_EQ(find({1, 2, 5}), 2u);
  EXPECT_EQ(find({4}), 2u);
  EXPECT_EQ(find({5, 4}), 0u);  // infrequent pair absent
}

TEST(FpGrowth, SupportsMatchScan) {
  const std::vector<Transaction> txns{
      {1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3}, {3}};
  FpGrowthOptions options;
  options.min_support = 2;
  for (const auto& fi : mineFrequentItemsets(txns, options)) {
    EXPECT_EQ(fi.support, supportByScan(txns, fi.items))
        << "itemset size " << fi.items.size();
  }
}

TEST(FpGrowth, MinSupportFilters) {
  const std::vector<Transaction> txns{{1}, {1}, {2}};
  FpGrowthOptions options;
  options.min_support = 2;
  const auto itemsets = mineFrequentItemsets(txns, options);
  ASSERT_EQ(itemsets.size(), 1u);
  EXPECT_EQ(itemsets[0].items, (std::vector<Item>{1}));
}

TEST(FpGrowth, MaxItemsetSizeBounds) {
  const std::vector<Transaction> txns{{1, 2, 3}, {1, 2, 3}, {1, 2, 3}};
  FpGrowthOptions options;
  options.min_support = 2;
  options.max_itemset_size = 2;
  for (const auto& fi : mineFrequentItemsets(txns, options)) {
    EXPECT_LE(fi.items.size(), 2u);
  }
}

TEST(FpGrowth, DuplicateItemsInTransactionCollapse) {
  const std::vector<Transaction> txns{{1, 1, 1}, {1}};
  FpGrowthOptions options;
  options.min_support = 1;
  const auto itemsets = mineFrequentItemsets(txns, options);
  ASSERT_EQ(itemsets.size(), 1u);
  EXPECT_EQ(itemsets[0].support, 2u);
}

TEST(FpGrowth, EmptyInputs) {
  FpGrowthOptions options;
  options.min_support = 1;
  EXPECT_TRUE(mineFrequentItemsets({}, options).empty());
  EXPECT_TRUE(mineFrequentItemsets({{}, {}}, options).empty());
}

TEST(FpGrowth, DeterministicSortedOutput) {
  const std::vector<Transaction> txns{{3, 1}, {1, 2}, {2, 3}, {1, 2, 3}};
  FpGrowthOptions options;
  options.min_support = 2;
  const auto a = mineFrequentItemsets(txns, options);
  const auto b = mineFrequentItemsets(txns, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].support, b[i].support);
    if (i > 0) {
      EXPECT_LT(a[i - 1].items, a[i].items);
    }
  }
}

TEST(FpGrowth, MaxItemsetsCapsOutput) {
  const std::vector<Transaction> txns{{1, 2, 3, 4}, {1, 2, 3, 4},
                                      {1, 2, 3, 4}};
  FpGrowthOptions options;
  options.min_support = 2;
  options.max_itemsets = 5;
  EXPECT_LE(mineFrequentItemsets(txns, options).size(), 5u);
}

TEST(AprioriReference, MatchesFpGrowthOnTextbook) {
  const std::vector<Transaction> txns{{1, 2, 5}, {2, 4},    {2, 3},
                                      {1, 2, 4}, {1, 3},    {2, 3},
                                      {1, 3},    {1, 2, 3, 5}, {1, 2, 3}};
  FpGrowthOptions options;
  options.min_support = 2;
  const auto fp = mineFrequentItemsets(txns, options);
  const auto ap = mineFrequentItemsetsApriori(txns, options);
  ASSERT_EQ(fp.size(), ap.size());
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(fp[i].items, ap[i].items);
    EXPECT_EQ(fp[i].support, ap[i].support);
  }
}

// Property sweep: FP-growth must agree with the Apriori reference on
// random transaction databases.
class FpGrowthEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FpGrowthEquivalence, AgreesWithApriori) {
  util::Rng rng(GetParam());
  const int n_txns = static_cast<int>(rng.uniformInt(5, 40));
  const int n_items = static_cast<int>(rng.uniformInt(3, 10));
  std::vector<Transaction> txns;
  for (int t = 0; t < n_txns; ++t) {
    Transaction txn;
    for (Item item = 0; item < n_items; ++item) {
      if (rng.bernoulli(0.35)) txn.push_back(item);
    }
    txns.push_back(std::move(txn));
  }
  FpGrowthOptions options;
  options.min_support = static_cast<std::uint64_t>(rng.uniformInt(1, 5));

  const auto fp = mineFrequentItemsets(txns, options);
  const auto ap = mineFrequentItemsetsApriori(txns, options);
  ASSERT_EQ(fp.size(), ap.size()) << "seed=" << GetParam();
  for (std::size_t i = 0; i < fp.size(); ++i) {
    EXPECT_EQ(fp[i].items, ap[i].items) << "seed=" << GetParam();
    EXPECT_EQ(fp[i].support, ap[i].support) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, FpGrowthEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace rap::mining
