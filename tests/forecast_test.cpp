#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "forecast/forecaster.h"
#include "forecast/pipeline.h"
#include "gen/background.h"
#include "util/rng.h"

namespace rap::forecast {
namespace {

using dataset::AttributeCombination;
using dataset::Schema;

// --------------------------------------------------------- MovingAverage

TEST(MovingAverage, MeanOfTrailingWindow) {
  const MovingAverageForecaster forecaster(3);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({1, 2, 3, 4, 5}), 4.0);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({10.0}), 10.0);  // short history
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({}), 0.0);
}

TEST(MovingAverage, WindowOneTracksLastValue) {
  const MovingAverageForecaster forecaster(1);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({7, 8, 42}), 42.0);
}

TEST(MovingAverage, ConstantSeriesExact) {
  const MovingAverageForecaster forecaster(5);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext(std::vector<double>(20, 3.5)), 3.5);
}

// ------------------------------------------------------------------ EWMA

TEST(Ewma, ConstantSeriesExact) {
  const EwmaForecaster forecaster(0.3);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext(std::vector<double>(50, 9.0)), 9.0);
}

TEST(Ewma, AlphaOneTracksLastValue) {
  const EwmaForecaster forecaster(1.0);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({1, 2, 3, 99}), 99.0);
}

TEST(Ewma, RecencyWeighting) {
  // After a level shift the forecast moves toward the new level but
  // keeps memory of the old one.
  std::vector<double> series(20, 10.0);
  series.insert(series.end(), 5, 20.0);
  const double forecast = EwmaForecaster(0.3).forecastNext(series);
  EXPECT_GT(forecast, 15.0);
  EXPECT_LT(forecast, 20.0);
}

TEST(Ewma, EmptyHistoryZero) {
  EXPECT_DOUBLE_EQ(EwmaForecaster(0.5).forecastNext({}), 0.0);
}

// ---------------------------------------------------------- Holt-Winters

std::vector<double> seasonalSeries(std::size_t n, std::size_t period,
                                   double level, double amplitude,
                                   double trend = 0.0) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    out.push_back(level + trend * static_cast<double>(t) +
                  amplitude * std::sin(2.0 * std::numbers::pi *
                                       static_cast<double>(t % period) /
                                       static_cast<double>(period)));
  }
  return out;
}

TEST(HoltWinters, LearnsSeasonalPattern) {
  const std::size_t period = 24;
  const auto series = seasonalSeries(24 * 10, period, 100.0, 30.0);
  const HoltWintersForecaster forecaster(static_cast<std::int32_t>(period));
  const double forecast = forecaster.forecastNext(series);
  // Next point continues the sinusoid at phase t = 240 -> 240 % 24 = 0.
  const double expected = 100.0 + 30.0 * std::sin(0.0);
  EXPECT_NEAR(forecast, expected, 5.0);
}

TEST(HoltWinters, SeasonalBeatsEwmaOnSeasonalData) {
  const std::size_t period = 24;
  const auto series = seasonalSeries(24 * 8, period, 50.0, 25.0);
  const double truth =
      50.0 + 25.0 * std::sin(2.0 * std::numbers::pi *
                             static_cast<double>(series.size() % period) /
                             static_cast<double>(period));
  const double hw =
      HoltWintersForecaster(static_cast<std::int32_t>(period))
          .forecastNext(series);
  const double ewma = EwmaForecaster(0.3).forecastNext(series);
  EXPECT_LT(std::fabs(hw - truth), std::fabs(ewma - truth));
}

TEST(HoltWinters, TracksTrend) {
  const auto series = seasonalSeries(24 * 8, 24, 100.0, 0.0, /*trend=*/0.5);
  const double forecast = HoltWintersForecaster(24).forecastNext(series);
  const double expected = 100.0 + 0.5 * static_cast<double>(series.size());
  EXPECT_NEAR(forecast, expected, 3.0);
}

TEST(HoltWinters, ShortHistoryFallsBackGracefully) {
  const HoltWintersForecaster forecaster(24);
  const std::vector<double> short_series(10, 42.0);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext(short_series), 42.0);
  EXPECT_DOUBLE_EQ(forecaster.forecastNext({}), 0.0);
}

TEST(HoltWinters, ConstantSeriesStaysConstant) {
  const auto series = std::vector<double>(24 * 4, 77.0);
  EXPECT_NEAR(HoltWintersForecaster(24).forecastNext(series), 77.0, 1e-6);
}

// --------------------------------------------------------------- pipeline

TEST(Pipeline, DetectsDropAgainstForecast) {
  const Schema schema = Schema::tiny();
  std::vector<LeafSeries> series;
  const auto broken =
      AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    LeafSeries s;
    s.leaf = dataset::leafFromIndex(schema, i);
    s.history.assign(48, 100.0);
    s.current = broken.matchesLeaf(s.leaf) ? 30.0 : 100.0;
    series.push_back(std::move(s));
  }
  const auto table = buildDetectedTable(schema, series,
                                        MovingAverageForecaster(12), {});
  EXPECT_EQ(table.anomalousCount(), 8u);

  // Localization closes the loop.
  const auto result = core::RapMiner().localize(table, 3);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac, broken);
}

TEST(Pipeline, SkipsDeadLeaves) {
  const Schema schema = Schema::tiny();
  std::vector<LeafSeries> series;
  LeafSeries dead;
  dead.leaf = dataset::leafFromIndex(schema, 0);
  dead.history.assign(10, 0.0);
  dead.current = 0.0;
  series.push_back(dead);
  LeafSeries alive;
  alive.leaf = dataset::leafFromIndex(schema, 1);
  alive.history.assign(10, 50.0);
  alive.current = 50.0;
  series.push_back(alive);
  const auto table =
      buildDetectedTable(schema, series, MovingAverageForecaster(5), {});
  EXPECT_EQ(table.size(), 1u);
}

TEST(Pipeline, EndToEndOnBackgroundModel) {
  // Leaf series come from the diurnal background model; Holt-Winters with
  // the daily season recovers the pattern well enough that an injected
  // 60% drop on one location is detected and localized.
  const Schema schema = Schema::synthetic({4, 3, 3});
  gen::BackgroundConfig bg_config;
  bg_config.sparsity = 0.0;
  bg_config.minutes_per_day = 96;  // compressed day for test speed
  const gen::CdnBackgroundModel model(schema, bg_config, 5);
  util::Rng rng(6);

  AttributeCombination broken(schema.attributeCount());
  broken.setSlot(0, 2);

  std::vector<LeafSeries> series;
  const std::int64_t now = 96 * 4;  // four days of history
  for (std::uint64_t leaf = 0; leaf < schema.leafCount(); ++leaf) {
    LeafSeries s;
    s.leaf = dataset::leafFromIndex(schema, leaf);
    for (std::int64_t t = 0; t < now; ++t) {
      s.history.push_back(model.sampleVolume(leaf, t, rng));
    }
    s.current = model.sampleVolume(leaf, now, rng);
    if (broken.matchesLeaf(s.leaf)) s.current *= 0.4;
    series.push_back(std::move(s));
  }

  PipelineConfig config;
  config.detect_threshold = 0.3;
  const auto table = buildDetectedTable(
      schema, series, HoltWintersForecaster(96), config);
  const auto result = core::RapMiner().localize(table, 3);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac, broken);
}

}  // namespace
}  // namespace rap::forecast
