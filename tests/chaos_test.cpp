// Chaos suite: fault injection, degraded search, checkpoint/restore.
//
// Three tiers:
//   * registry semantics — exercise rap::fault directly, so they run in
//     every build (the Registry is always compiled; only the macro call
//     sites are gated);
//   * resilience without faults — deadline/layer-cap degradation and
//     checkpoint/restore are plain features and always run;
//   * injected chaos — tests that arm the macro call sites GTEST_SKIP
//     unless the build carries them (cmake -DRAP_FAULT_INJECTION=ON,
//     which CI's chaos job enables together with ASan).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/rapminer.h"
#include "detect/detector.h"
#include "fault/fault.h"
#include "gen/rapmd.h"
#include "io/checkpoint.h"
#include "io/csv.h"
#include "io/json.h"
#include "stream/engine.h"
#include "stream/source.h"
#include "util/rng.h"

namespace rap {
namespace {

using dataset::Schema;
using stream::PushResult;
using stream::StreamConfig;
using stream::StreamEngine;
using stream::StreamEvent;
using stream::StreamStats;
using stream::TriggerPolicy;

/// Every test starts and ends with a clean registry: chaos schedules
/// must never leak across tests (or into other suites in this binary).
class Chaos : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().reset(); }
  void TearDown() override { fault::Registry::instance().reset(); }
};

StreamEvent makeEvent(std::vector<dataset::ElemId> slots, std::int64_t ts,
                      double v, double f) {
  StreamEvent event;
  event.leaf = dataset::AttributeCombination(std::move(slots));
  event.ts = ts;
  event.v = v;
  event.f = f;
  return event;
}

/// Row fingerprint independent of arrival order.
using RowKey = std::tuple<std::vector<dataset::ElemId>, double, double>;

std::multiset<RowKey> rowKeys(const dataset::LeafTable& table) {
  std::multiset<RowKey> keys;
  for (const auto& row : table.rows()) {
    keys.insert({row.ac.slots(), row.v, row.f});
  }
  return keys;
}

class TempDir : public Chaos {
 protected:
  void SetUp() override {
    Chaos::SetUp();
    dir_ = std::filesystem::temp_directory_path() /
           ("rap_chaos_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    Chaos::TearDown();
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Fault registry semantics (always run).

TEST_F(Chaos, ScheduleIsDeterministicInHitIndex) {
  auto& registry = fault::Registry::instance();
  fault::FaultSpec spec;
  spec.action = fault::Action::kDrop;
  spec.probability = 0.4;
  spec.seed = 7;

  std::vector<bool> first;
  registry.arm("test.point", spec);
  for (int i = 0; i < 200; ++i) {
    first.push_back(registry.onHit("test.point") == fault::Action::kDrop);
  }
  registry.reset();
  registry.arm("test.point", spec);
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) {
    second.push_back(registry.onHit("test.point") == fault::Action::kDrop);
  }
  EXPECT_EQ(first, second);  // pure function of (seed, hit index)

  const std::size_t fired =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 40u);  // ~80 expected; bounds are generous
  EXPECT_LT(fired, 160u);
  EXPECT_EQ(registry.fires("test.point"), fired);
  EXPECT_EQ(registry.hits("test.point"), 200u);
}

TEST_F(Chaos, SkipFirstAndMaxFiresBoundTheSchedule) {
  auto& registry = fault::Registry::instance();
  fault::FaultSpec spec;
  spec.action = fault::Action::kError;
  spec.skip_first = 3;
  spec.max_fires = 2;
  registry.arm("test.window", spec);

  std::vector<int> fired_at;
  for (int i = 0; i < 10; ++i) {
    if (registry.onHit("test.window") != fault::Action::kNone) {
      fired_at.push_back(i);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 4}));
}

TEST_F(Chaos, ThrowActionRaisesInjectedFault) {
  fault::FaultSpec spec;
  spec.action = fault::Action::kThrow;
  fault::Registry::instance().arm("test.throw", spec);
  try {
    fault::inject("test.throw");
    FAIL() << "inject() should have thrown";
  } catch (const fault::InjectedFault& e) {
    EXPECT_EQ(e.point(), "test.throw");
    EXPECT_NE(std::string(e.what()).find("test.throw"), std::string::npos);
  }
}

TEST_F(Chaos, InjectStatusMapsErrorToInternal) {
  fault::FaultSpec spec;
  spec.action = fault::Action::kError;
  fault::Registry::instance().arm("test.status", spec);
  const util::Status status = fault::injectStatus("test.status");
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_NE(status.message().find("test.status"), std::string::npos);
  EXPECT_TRUE(fault::injectStatus("test.unarmed").isOk());
}

TEST_F(Chaos, DisarmedPointNeverFires) {
  auto& registry = fault::Registry::instance();
  fault::FaultSpec spec;
  spec.action = fault::Action::kDrop;
  registry.arm("test.off", spec);
  EXPECT_EQ(registry.onHit("test.off"), fault::Action::kDrop);
  registry.disarm("test.off");
  EXPECT_EQ(registry.onHit("test.off"), fault::Action::kNone);
  EXPECT_FALSE(fault::anyArmed());
}

TEST_F(Chaos, MacroIsInertWhenCompiledOut) {
  // Production builds: even with a schedule armed, gated call sites
  // evaluate to the constant kNone (zero-overhead contract).
  fault::FaultSpec spec;
  spec.action = fault::Action::kDrop;
  fault::Registry::instance().arm("test.gate", spec);
  if (fault::kCompiledIn) {
    EXPECT_EQ(RAP_FAULT_HIT("test.gate"), fault::Action::kDrop);
  } else {
    EXPECT_EQ(RAP_FAULT_HIT("test.gate"), fault::Action::kNone);
    EXPECT_EQ(fault::Registry::instance().hits("test.gate"), 0u);
  }
}

// ---------------------------------------------------------------------------
// Degraded search: deadlines and layer caps (always run).

/// 3x3 grid with a single anomalous leaf at (0, 1) — the RAP lives at
/// layer 2, so a layer-1 cap must degrade instead of finding it.
dataset::LeafTable layer2Table() {
  const Schema schema = Schema::synthetic({3, 3});
  dataset::LeafTable table(schema);
  for (dataset::ElemId a = 0; a < 3; ++a) {
    for (dataset::ElemId b = 0; b < 3; ++b) {
      const bool anomalous = (a == 0 && b == 1);
      table.addRow(dataset::AttributeCombination({a, b}),
                   anomalous ? 30.0 : 10.0, 10.0, anomalous);
    }
  }
  return table;
}

TEST_F(Chaos, DeadlineExpiryReturnsDegradedPartialResult) {
  const auto miner = core::RapMiner::Builder()
                         .attributeDeletion(false)
                         .deadlineSeconds(1e-12)  // expires immediately
                         .build();
  ASSERT_TRUE(miner.isOk());
  const auto result = miner->localize(layer2Table(), 3);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.stats.degraded_reason, "deadline");

  const std::string json =
      io::resultToJson(Schema::synthetic({3, 3}), result);
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_reason\":\"deadline\""), std::string::npos);
}

TEST_F(Chaos, LayerCapDegradesInsteadOfSearchingDeeper) {
  const auto capped = core::RapMiner::Builder()
                          .attributeDeletion(false)
                          .maxLayers(1)
                          .build();
  ASSERT_TRUE(capped.isOk());
  const auto partial = capped->localize(layer2Table(), 3);
  EXPECT_TRUE(partial.degraded);
  EXPECT_EQ(partial.stats.degraded_reason, "layer-cap");

  const auto full = core::RapMiner::Builder()
                        .attributeDeletion(false)
                        .build();
  ASSERT_TRUE(full.isOk());
  const auto complete = full->localize(layer2Table(), 3);
  EXPECT_FALSE(complete.degraded);
  ASSERT_FALSE(complete.patterns.empty());
  EXPECT_EQ(complete.patterns[0].ac.slots(),
            (std::vector<dataset::ElemId>{0, 1}));
}

TEST_F(Chaos, StreamDeadlineProducesDegradedLocalizations) {
  const Schema schema = Schema::synthetic({6, 5, 4});
  gen::RapmdConfig gen_config;
  gen_config.num_cases = 1;
  gen_config.label_noise = 0.0;
  gen::RapmdGenerator generator(schema, gen_config, /*seed=*/3);

  StreamConfig config;
  config.shards = 2;
  config.window_width = 60;
  config.trigger = TriggerPolicy::kAnomalousWindow;
  config.localize_deadline_seconds = 1e-12;  // every search degrades
  StreamEngine engine(schema, config);
  engine.start();

  stream::CaseEventsConfig source;
  source.window_width = config.window_width;
  engine.ingestBatch(stream::eventsFromCase(generator.generateCase(0), source));
  engine.drain();
  engine.stop();

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.localizations, 1u);
  EXPECT_EQ(stats.localizations_degraded, 1u);
  const auto localizations = engine.takeLocalizations();
  ASSERT_EQ(localizations.size(), 1u);
  EXPECT_TRUE(localizations[0].result.degraded);
  EXPECT_EQ(localizations[0].result.stats.degraded_reason, "deadline");
}

// ---------------------------------------------------------------------------
// Checkpoint / restore (always run).

/// Full {4,3} grid for one epoch: 12 healthy leaves.
std::vector<StreamEvent> gridWindow(std::int64_t epoch,
                                    std::int64_t window_width) {
  std::vector<StreamEvent> events;
  for (dataset::ElemId a = 0; a < 4; ++a) {
    for (dataset::ElemId b = 0; b < 3; ++b) {
      const double value = 1.0 + a * 3 + b;
      events.push_back(makeEvent(
          {a, b}, epoch * window_width + (a * 3 + b) % window_width, value,
          value));
    }
  }
  return events;
}

TEST_F(TempDir, CheckpointRestoreResumesAtNextUnsealedEpochExactlyOnce) {
  const Schema schema = Schema::synthetic({4, 3});
  StreamConfig config;
  config.shards = 3;
  config.window_width = 60;
  config.trigger = TriggerPolicy::kEveryWindow;

  // --- First incarnation: three full windows plus a partial epoch 3.
  std::mutex mutex;
  std::map<std::int64_t, std::multiset<RowKey>> windows_a;
  StreamEngine a(schema, config);
  a.setWindowCallback([&](const StreamEngine::WindowInfo& info) {
    std::lock_guard<std::mutex> lock(mutex);
    windows_a[info.epoch] = rowKeys(info.table);
  });
  a.start();
  std::vector<StreamEvent> events;
  for (std::int64_t e = 0; e < 3; ++e) {
    auto w = gridWindow(e, config.window_width);
    events.insert(events.end(), w.begin(), w.end());
  }
  // Partial epoch 3: four rows, watermark 185 seals epochs 0..2 only.
  std::vector<StreamEvent> partial;
  for (dataset::ElemId a_id = 0; a_id < 4; ++a_id) {
    partial.push_back(makeEvent({a_id, 0}, 180 + a_id, 5.0, 5.0));
  }
  events.insert(events.end(), partial.begin(), partial.end());
  ASSERT_EQ(a.ingestBatch(std::move(events)).accepted, 40u);

  ASSERT_TRUE(a.checkpoint(path("chk")).isOk());
  {
    // The checkpoint barrier already waited for windows 0..2 and their
    // localizations; epoch 3 must still be open.
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(windows_a.size(), 3u);
  }
  const auto local_a = a.takeLocalizations();
  ASSERT_EQ(local_a.size(), 3u);
  a.stop();  // the "crash": everything after the checkpoint is lost

  // --- Second incarnation resumes from the file.
  auto restored = StreamEngine::restore(schema, config, path("chk"));
  ASSERT_TRUE(restored.isOk()) << restored.status().message();
  StreamEngine& b = *restored.value();
  std::map<std::int64_t, std::multiset<RowKey>> windows_b;
  b.setWindowCallback([&](const StreamEngine::WindowInfo& info) {
    std::lock_guard<std::mutex> lock(mutex);
    windows_b[info.epoch] = rowKeys(info.table);
  });
  b.start();

  // Replayed event for a sealed epoch: dropped late, NOT re-sealed —
  // exactly-once sealing across the kill/restore cycle.
  b.ingest(makeEvent({0, 0}, 70, 1.0, 1.0));
  // New epoch-4 traffic pushes the watermark past epoch 3's end.
  ASSERT_EQ(b.ingestBatch(gridWindow(4, config.window_width)).accepted, 12u);
  b.drain();
  b.stop();

  const StreamStats stats_b = b.stats();
  EXPECT_EQ(stats_b.late_dropped, 1u);

  std::lock_guard<std::mutex> lock(mutex);
  // The restored engine seals exactly the epochs the first one did not.
  ASSERT_EQ(windows_b.size(), 2u);
  ASSERT_TRUE(windows_b.count(3));
  ASSERT_TRUE(windows_b.count(4));
  // Window 3 carries the checkpointed fragments — nothing lost, nothing
  // duplicated, bit-identical KPI values.
  std::multiset<RowKey> expected;
  for (const auto& event : partial) {
    expected.insert({event.leaf.slots(), event.v, event.f});
  }
  EXPECT_EQ(windows_b[3], expected);
  const auto local_b = b.takeLocalizations();
  std::set<std::int64_t> epochs_b;
  for (const auto& l : local_b) epochs_b.insert(l.epoch);
  EXPECT_EQ(epochs_b, (std::set<std::int64_t>{3, 4}));
}

TEST_F(TempDir, RestoreRejectsMismatchedTopology) {
  const Schema schema = Schema::synthetic({4, 3});
  StreamConfig config;
  config.shards = 3;
  config.window_width = 60;
  StreamEngine engine(schema, config);
  engine.start();
  engine.ingestBatch(gridWindow(0, config.window_width));
  ASSERT_TRUE(engine.checkpoint(path("chk")).isOk());
  engine.stop();

  StreamConfig narrower = config;
  narrower.shards = 2;
  EXPECT_EQ(StreamEngine::restore(schema, narrower, path("chk"))
                .status()
                .code(),
            util::StatusCode::kInvalidArgument);
  StreamConfig wider = config;
  wider.window_width = 120;
  EXPECT_EQ(
      StreamEngine::restore(schema, wider, path("chk")).status().code(),
      util::StatusCode::kInvalidArgument);
}

TEST_F(TempDir, CheckpointRequiresRunningEngine) {
  const Schema schema = Schema::synthetic({4, 3});
  StreamEngine engine(schema, StreamConfig{});
  EXPECT_EQ(engine.checkpoint(path("chk")).code(),
            util::StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Injected chaos (needs the gated call sites compiled in).

#define RAP_REQUIRE_FAULT_BUILD()                                      \
  do {                                                                 \
    if (!fault::kCompiledIn) {                                         \
      GTEST_SKIP() << "build without RAP_FAULT_INJECTION; chaos CI "   \
                      "job covers this";                               \
    }                                                                  \
  } while (false)

TEST_F(Chaos, RandomizedFaultsNeverDeadlockAndKeepExactlyOnceSealing) {
  RAP_REQUIRE_FAULT_BUILD();
  const Schema schema = Schema::synthetic({6, 5, 4});
  gen::RapmdConfig gen_config;
  gen_config.num_cases = 6;
  gen_config.label_noise = 0.0;
  gen::RapmdGenerator generator(schema, gen_config, /*seed=*/7);

  StreamConfig config;
  config.shards = 4;
  config.window_width = 60;
  config.allowed_lateness = 1000000;
  config.trigger = TriggerPolicy::kAnomalousWindow;
  StreamEngine engine(schema, config);
  engine.start();

  // Batch reference per window, computed before any fault is armed.
  std::vector<StreamEvent> events;
  std::vector<std::multiset<std::vector<dataset::ElemId>>> expected;
  const detect::RelativeDeviationDetector detector(config.detect_threshold);
  const core::RapMiner miner(config.miner);
  for (std::int32_t i = 0; i < gen_config.num_cases; ++i) {
    gen::Case c = generator.generateCase(i);
    dataset::LeafTable batch_table = c.table;
    detector.run(batch_table);
    std::multiset<std::vector<dataset::ElemId>> acs;
    for (const auto& p : miner.localize(batch_table, config.top_k).patterns) {
      acs.insert(p.ac.slots());
    }
    expected.push_back(std::move(acs));
    stream::CaseEventsConfig source;
    source.epoch = i;
    source.window_width = config.window_width;
    source.shuffle_seed = 100 + static_cast<std::uint64_t>(i);
    auto case_events = stream::eventsFromCase(c, source);
    events.insert(events.end(), case_events.begin(), case_events.end());
  }
  util::Rng rng(9);
  rng.shuffle(events);

  auto& registry = fault::Registry::instance();
  fault::FaultSpec seal_spec;
  seal_spec.action = fault::Action::kDrop;
  seal_spec.probability = 0.34;
  seal_spec.seed = 11;
  registry.arm("stream.seal", seal_spec);
  fault::FaultSpec localize_spec;
  localize_spec.action = fault::Action::kThrow;
  localize_spec.probability = 0.34;
  localize_spec.seed = 22;
  registry.arm("stream.localize", localize_spec);

  stream::ReplaySource::Config replay;
  replay.producers = 3;
  replay.batch_size = 64;
  const PushResult pushed =
      stream::ReplaySource(replay).run(engine, events);
  EXPECT_EQ(pushed.accepted, events.size());
  engine.drain();  // must terminate despite the armed chaos
  engine.stop();

  const StreamStats stats = engine.stats();
  // Every assembled window is accounted exactly once: processed or
  // dropped by the injected seal fault, never lost, never repeated.
  EXPECT_EQ(stats.windows_sealed + stats.windows_dropped,
            static_cast<std::uint64_t>(gen_config.num_cases));
  EXPECT_EQ(stats.windows_dropped, registry.fires("stream.seal"));
  // Every dispatched localization either finished or failed on the
  // injected fault.
  EXPECT_EQ(stats.localizations + stats.localize_failures,
            stats.windows_sealed);

  // Surviving localizations are bit-equal to the no-fault batch
  // reference for their window — chaos may drop work, never corrupt it.
  const auto localizations = engine.takeLocalizations();
  EXPECT_EQ(localizations.size(), stats.localizations);
  std::set<std::int64_t> seen_epochs;
  for (const auto& l : localizations) {
    EXPECT_TRUE(seen_epochs.insert(l.epoch).second)
        << "epoch " << l.epoch << " localized twice";
    std::multiset<std::vector<dataset::ElemId>> got;
    for (const auto& p : l.result.patterns) got.insert(p.ac.slots());
    ASSERT_LT(static_cast<std::size_t>(l.epoch), expected.size());
    EXPECT_EQ(got, expected[static_cast<std::size_t>(l.epoch)])
        << "window " << l.epoch;
  }
}

TEST_F(Chaos, IngestDropFaultDiscardsWholeBatchCounted) {
  RAP_REQUIRE_FAULT_BUILD();
  const Schema schema = Schema::synthetic({4, 3});
  StreamConfig config;
  config.shards = 2;
  config.window_width = 60;
  StreamEngine engine(schema, config);
  engine.start();

  fault::FaultSpec spec;
  spec.action = fault::Action::kDrop;
  spec.max_fires = 1;
  fault::Registry::instance().arm("stream.ingest", spec);

  const PushResult dropped = engine.ingestBatch(gridWindow(0, 60));
  EXPECT_EQ(dropped.accepted, 0u);
  EXPECT_EQ(dropped.dropped_newest, 12u);
  const PushResult accepted = engine.ingestBatch(gridWindow(0, 60));
  EXPECT_EQ(accepted.accepted, 12u);
  engine.stop();
  EXPECT_EQ(engine.stats().dropped_newest, 12u);
  EXPECT_EQ(engine.stats().ingested, 12u);
}

TEST_F(Chaos, SealThrowIsContainedAndCounted) {
  RAP_REQUIRE_FAULT_BUILD();
  const Schema schema = Schema::synthetic({4, 3});
  StreamConfig config;
  config.shards = 2;
  config.window_width = 60;
  config.trigger = TriggerPolicy::kEveryWindow;
  StreamEngine engine(schema, config);
  engine.start();

  fault::FaultSpec spec;
  spec.action = fault::Action::kThrow;
  spec.max_fires = 1;
  fault::Registry::instance().arm("stream.seal", spec);

  std::vector<StreamEvent> events;
  for (std::int64_t e = 0; e < 4; ++e) {
    auto w = gridWindow(e, config.window_width);
    events.insert(events.end(), w.begin(), w.end());
  }
  engine.ingestBatch(std::move(events));
  engine.drain();
  engine.stop();

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.windows_dropped, 1u);   // the thrown window
  EXPECT_EQ(stats.windows_sealed, 3u);    // the sealer survived it
}

TEST_F(TempDir, CsvChunkFaultSurfacesAsStatus) {
  RAP_REQUIRE_FAULT_BUILD();
  ASSERT_TRUE(
      io::writeCsvFile(path("data.csv"), {{"a", "b"}, {"c", "d"}}).isOk());
  fault::FaultSpec spec;
  spec.action = fault::Action::kError;
  fault::Registry::instance().arm("io.csv_chunk", spec);
  const auto status =
      io::streamCsvFile(path("data.csv"), [](io::CsvRow&&) {});
  EXPECT_EQ(status.code(), util::StatusCode::kInternal);
  EXPECT_NE(status.message().find("io.csv_chunk"), std::string::npos);
}

TEST_F(Chaos, SearchLayerFaultDegradesLocalization) {
  RAP_REQUIRE_FAULT_BUILD();
  fault::FaultSpec spec;
  spec.action = fault::Action::kError;
  fault::Registry::instance().arm("search.layer", spec);
  const auto miner =
      core::RapMiner::Builder().attributeDeletion(false).build();
  ASSERT_TRUE(miner.isOk());
  const auto result = miner->localize(layer2Table(), 3);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.stats.degraded_reason, "fault");
}

}  // namespace
}  // namespace rap
