// Streaming engine tests: queue backpressure policies, watermark and
// window-sealing semantics, and end-to-end stream-vs-batch localization
// equivalence.  The multi-producer tests double as the ThreadSanitizer
// targets of the CI tsan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/rapminer.h"
#include "detect/detector.h"
#include "gen/rapmd.h"
#include "obs/metrics.h"
#include "stream/engine.h"
#include "stream/event.h"
#include "stream/lag_collector.h"
#include "stream/queue.h"
#include "stream/source.h"
#include "stream/watermark.h"
#include "stream/window.h"
#include "util/rng.h"

namespace rap::stream {
namespace {

dataset::AttributeCombination leafAc(std::vector<dataset::ElemId> slots) {
  return dataset::AttributeCombination(std::move(slots));
}

StreamEvent makeEvent(std::vector<dataset::ElemId> slots, std::int64_t ts,
                      double v, double f) {
  StreamEvent event;
  event.leaf = leafAc(std::move(slots));
  event.ts = ts;
  event.v = v;
  event.f = f;
  return event;
}

/// Multiset fingerprint of a window's rows, independent of row order.
using RowKey = std::tuple<std::vector<dataset::ElemId>, double, double>;

std::multiset<RowKey> rowKeys(const dataset::LeafTable& table) {
  std::multiset<RowKey> keys;
  for (const auto& row : table.rows()) {
    keys.insert({row.ac.slots(), row.v, row.f});
  }
  return keys;
}

/// Thread-safe collector for sealed windows (callback runs on the sealer
/// thread) that tests can block on.
class WindowCollector {
 public:
  void install(StreamEngine& engine) {
    engine.setWindowCallback([this](const StreamEngine::WindowInfo& info) {
      std::lock_guard<std::mutex> lock(mutex_);
      windows_[info.epoch] = rowKeys(info.table);
      cv_.notify_all();
    });
  }

  void waitForWindowCount(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, n] { return windows_.size() >= n; });
  }

  std::map<std::int64_t, std::multiset<RowKey>> windows() {
    std::lock_guard<std::mutex> lock(mutex_);
    return windows_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::int64_t, std::multiset<RowKey>> windows_;
};

// ---------------------------------------------------------------------------
// Event-time helpers.

TEST(EventTime, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floorDiv(0, 60), 0);
  EXPECT_EQ(floorDiv(59, 60), 0);
  EXPECT_EQ(floorDiv(60, 60), 1);
  EXPECT_EQ(floorDiv(-1, 60), -1);
  EXPECT_EQ(floorDiv(-60, 60), -1);
  EXPECT_EQ(floorDiv(-61, 60), -2);
}

TEST(EventTime, EpochOfMatchesWindowBounds) {
  EXPECT_EQ(epochOf(0, 10), 0);
  EXPECT_EQ(epochOf(9, 10), 0);
  EXPECT_EQ(epochOf(10, 10), 1);
  EXPECT_EQ(epochOf(-5, 10), -1);
}

TEST(Watermark, LagsMaxTimestampByAllowedLateness) {
  WatermarkTracker tracker(/*allowed_lateness=*/5);
  EXPECT_EQ(tracker.watermark(), WatermarkTracker::kNone);
  EXPECT_EQ(tracker.sealableEpoch(60), WatermarkTracker::kNone);

  tracker.observe(64);
  EXPECT_EQ(tracker.maxTimestamp(), 64);
  EXPECT_EQ(tracker.watermark(), 59);
  // Watermark 59 is inside window 0, so nothing is sealable yet.
  EXPECT_EQ(tracker.sealableEpoch(60), -1);

  tracker.observe(65);
  EXPECT_EQ(tracker.watermark(), 60);
  EXPECT_EQ(tracker.sealableEpoch(60), 0);

  tracker.observe(40);  // out-of-order: watermark never regresses
  EXPECT_EQ(tracker.watermark(), 60);
}

// ---------------------------------------------------------------------------
// Bounded queue policies.

std::vector<StreamEvent> numberedEvents(int n) {
  std::vector<StreamEvent> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(makeEvent({0}, i, static_cast<double>(i), 0.0));
  }
  return events;
}

TEST(BoundedEventQueue, DropOldestEvictsResidents) {
  BoundedEventQueue queue(4, BackpressurePolicy::kDropOldest);
  PushResult result = queue.pushMany(numberedEvents(8));
  EXPECT_EQ(result.accepted, 8u);
  EXPECT_EQ(result.dropped_oldest, 4u);
  EXPECT_EQ(result.dropped_newest, 0u);
  EXPECT_EQ(result.max_accepted_ts, 7);

  std::vector<StreamEvent> out;
  queue.drainNow(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].ts, 4 + i);
}

TEST(BoundedEventQueue, DropNewestRejectsArrivals) {
  BoundedEventQueue queue(4, BackpressurePolicy::kDropNewest);
  PushResult result = queue.pushMany(numberedEvents(8));
  EXPECT_EQ(result.accepted, 4u);
  EXPECT_EQ(result.dropped_newest, 4u);
  // The rejected tail must not advance the watermark.
  EXPECT_EQ(result.max_accepted_ts, 3);

  std::vector<StreamEvent> out;
  queue.drainNow(out);
  ASSERT_EQ(out.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i].ts, i);
}

TEST(BoundedEventQueue, BlockWaitsForRoomAndLosesNothing) {
  BoundedEventQueue queue(2, BackpressurePolicy::kBlock);
  PushResult result;
  std::thread producer(
      [&] { result = queue.pushMany(numberedEvents(10)); });

  std::vector<StreamEvent> out;
  while (out.size() < 10) {
    std::vector<StreamEvent> chunk;
    ASSERT_TRUE(queue.drainOrWait(chunk));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  EXPECT_EQ(result.accepted, 10u);
  EXPECT_EQ(result.dropped_oldest + result.dropped_newest, 0u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[i].ts, i);
}

TEST(BoundedEventQueue, CloseUnblocksProducerAndReportsDrops) {
  BoundedEventQueue queue(1, BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.push(makeEvent({0}, 0, 0.0, 0.0)).accepted, 1u);

  PushResult result;
  std::thread producer(
      [&] { result = queue.pushMany(numberedEvents(3)); });
  // The producer is (or will be) blocked on a full queue; closing must
  // wake it and count its remaining events as rejected, not lose them
  // silently or deadlock.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_EQ(result.accepted + result.dropped_newest, 3u);
  EXPECT_GE(result.dropped_newest, 1u);
}

TEST(BoundedEventQueue, ClosePushRaceLosesNoAccountedEvent) {
  // close() racing concurrent push()ers: every event must end up either
  // drained or in a drop counter — never lost, never double-counted —
  // and nobody may deadlock.  Run under TSan in CI.
  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropOldest,
        BackpressurePolicy::kDropNewest}) {
    BoundedEventQueue queue(8, policy);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> dropped_oldest{0};
    std::atomic<std::uint64_t> dropped_newest{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          const PushResult r =
              queue.push(makeEvent({0}, p * kPerProducer + i, 1.0, 1.0));
          accepted += r.accepted;
          dropped_oldest += r.dropped_oldest;
          dropped_newest += r.dropped_newest;
        }
      });
    }
    std::atomic<std::uint64_t> drained{0};
    std::thread consumer([&] {
      std::vector<StreamEvent> out;
      while (queue.drainOrWait(out)) {
        drained += out.size();
        out.clear();
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    queue.close();
    for (auto& t : producers) t.join();
    consumer.join();

    // Every push is accounted exactly once...
    EXPECT_EQ(accepted + dropped_newest,
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    // ...and every accepted event is either drained or was evicted.
    EXPECT_EQ(drained + dropped_oldest, accepted);
  }
}

TEST(BoundedEventQueue, PushAfterCloseIsRejected) {
  BoundedEventQueue queue(4, BackpressurePolicy::kBlock);
  queue.close();
  const PushResult r = queue.push(makeEvent({0}, 0, 1.0, 1.0));
  EXPECT_EQ(r.accepted, 0u);
  EXPECT_EQ(r.dropped_newest, 1u);
  std::vector<StreamEvent> out;
  EXPECT_FALSE(queue.drainOrWait(out));
  EXPECT_TRUE(out.empty());
}

TEST(BoundedEventQueue, CloseRacingNudgeAndDrainTerminates) {
  BoundedEventQueue queue(4, BackpressurePolicy::kBlock);
  std::thread nudger([&] {
    for (int i = 0; i < 1000; ++i) queue.nudge();
  });
  std::thread consumer([&] {
    std::vector<StreamEvent> out;
    while (queue.drainOrWait(out)) out.clear();
  });
  queue.close();
  nudger.join();
  consumer.join();  // must not hang on a missed close signal
  EXPECT_TRUE(queue.closed());
}

// ---------------------------------------------------------------------------
// Window assembly.

TEST(WindowAssembler, ReleasesEpochsInOrderOnceEveryShardSealed) {
  WindowAssembler assembler(/*shard_count=*/2, /*window_width=*/10);
  assembler.contribute(/*shard=*/0, /*epoch=*/0,
                       {dataset::LeafRow{leafAc({0}), 1.0, 1.0, false}});
  assembler.contribute(/*shard=*/0, /*epoch=*/1,
                       {dataset::LeafRow{leafAc({1}), 2.0, 2.0, false}});

  assembler.sealShardUpTo(0, 1);
  EXPECT_FALSE(assembler.hasReady());  // shard 1 has not sealed anything

  assembler.sealShardUpTo(1, 0);
  auto first = assembler.popReady();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->epoch, 0);
  EXPECT_EQ(first->start_ts, 0);
  EXPECT_EQ(first->end_ts, 10);
  ASSERT_EQ(first->rows.size(), 1u);
  EXPECT_FALSE(assembler.hasReady());  // epoch 1 still held back by shard 1

  assembler.sealShardUpTo(1, 1);
  auto second = assembler.popReady();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->epoch, 1);
  EXPECT_FALSE(assembler.popReady().has_value());
}

TEST(WindowAssembler, MergesFragmentsFromAllShards) {
  WindowAssembler assembler(3, 10);
  assembler.contribute(0, 5, {dataset::LeafRow{leafAc({0}), 1.0, 1.0, false}});
  assembler.contribute(1, 5, {dataset::LeafRow{leafAc({1}), 2.0, 2.0, false}});
  assembler.contribute(2, 5, {dataset::LeafRow{leafAc({2}), 3.0, 3.0, false}});
  for (std::int32_t shard = 0; shard < 3; ++shard) {
    assembler.sealShardUpTo(shard, 5);
  }
  auto window = assembler.popReady();
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->epoch, 5);
  EXPECT_EQ(window->rows.size(), 3u);
  // The contributor list drives trace-flow termination in the sealer.
  EXPECT_EQ(window->contributors, (std::vector<std::int32_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Engine: window semantics.

StreamConfig testConfig() {
  StreamConfig config;
  config.shards = 3;
  config.window_width = 60;
  config.allowed_lateness = 0;
  config.trigger = TriggerPolicy::kAnomalousWindow;
  return config;
}

/// Healthy events (v == f) across `epochs` windows over a {4,3} schema.
std::vector<StreamEvent> healthyGrid(std::int64_t window_width,
                                     int epochs) {
  std::vector<StreamEvent> events;
  for (int e = 0; e < epochs; ++e) {
    for (dataset::ElemId a = 0; a < 4; ++a) {
      for (dataset::ElemId b = 0; b < 3; ++b) {
        const double value = 1.0 + a * 3 + b;
        events.push_back(makeEvent({a, b},
                                   e * window_width + (a * 3 + b) % window_width,
                                   value, value));
      }
    }
  }
  return events;
}

std::map<std::int64_t, std::multiset<RowKey>> groupByEpoch(
    const std::vector<StreamEvent>& events, std::int64_t window_width) {
  std::map<std::int64_t, std::multiset<RowKey>> grouped;
  for (const auto& e : events) {
    grouped[epochOf(e.ts, window_width)].insert({e.leaf.slots(), e.v, e.f});
  }
  return grouped;
}

TEST(StreamEngine, InOrderStreamMatchesBatchGrouping) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  StreamEngine engine(schema, config);
  WindowCollector collector;
  collector.install(engine);
  engine.start();

  const auto events = healthyGrid(config.window_width, 4);
  engine.ingestBatch(events);
  engine.drain();

  EXPECT_EQ(collector.windows(), groupByEpoch(events, config.window_width));
  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.ingested, events.size());
  EXPECT_EQ(stats.windows_sealed, 4u);
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.late_dropped, 0u);
  engine.stop();
}

TEST(StreamEngine, OutOfOrderAcrossProducersMatchesBatchGrouping) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  config.shards = 4;
  // Lateness beyond the stream's span: reordering can never cause drops,
  // so the stream must reduce to exact batch grouping.
  config.allowed_lateness = 1000000;
  StreamEngine engine(schema, config);
  WindowCollector collector;
  collector.install(engine);
  engine.start();

  auto events = healthyGrid(config.window_width, 6);
  util::Rng rng(42);
  rng.shuffle(events);

  ReplaySource::Config replay;
  replay.producers = 4;
  replay.batch_size = 7;
  const PushResult result = ReplaySource(replay).run(engine, events);
  EXPECT_EQ(result.accepted, events.size());
  engine.drain();

  EXPECT_EQ(collector.windows(), groupByEpoch(events, config.window_width));
  engine.stop();
  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.ingested, events.size());
  EXPECT_EQ(stats.late_dropped, 0u);
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(StreamEngine, LateEventWithinLatenessIsAdmitted) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  config.shards = 1;
  config.window_width = 10;
  config.allowed_lateness = 20;
  StreamEngine engine(schema, config);
  WindowCollector collector;
  collector.install(engine);
  engine.start();

  // max_ts 39 -> watermark 19 -> only epoch 0 sealable.  ts=12 then
  // arrives behind the watermark but its window (epoch 1) is still open.
  engine.ingest(makeEvent({0, 0}, 5, 1.0, 1.0));
  engine.ingest(makeEvent({1, 0}, 39, 1.0, 1.0));
  engine.ingest(makeEvent({2, 0}, 12, 1.0, 1.0));
  engine.drain();

  const auto windows = collector.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows.at(1).size(), 1u);
  EXPECT_EQ(windows.at(1).count({{2, 0}, 1.0, 1.0}), 1u);
  const StreamStats stats = engine.stats();
  // ts=12 was queued after the watermark reached 19, so it is counted
  // late for certain; ts=5 may also count if the consumer bucketed it
  // only after the watermark moved (the counter reflects the watermark
  // at processing time — telemetry, not an admission decision).
  EXPECT_GE(stats.late_admitted, 1u);
  EXPECT_EQ(stats.late_dropped, 0u);
  engine.stop();
}

TEST(StreamEngine, LateEventForSealedWindowIsDroppedAndCounted) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  config.shards = 1;
  config.window_width = 10;
  config.allowed_lateness = 0;
  StreamEngine engine(schema, config);
  WindowCollector collector;
  collector.install(engine);
  engine.start();

  engine.ingest(makeEvent({0, 0}, 5, 1.0, 1.0));
  engine.ingest(makeEvent({1, 0}, 15, 1.0, 1.0));
  engine.ingest(makeEvent({2, 0}, 25, 1.0, 1.0));
  // Watermark 25 seals epochs 0 and 1; wait until both windows actually
  // emerged so the late arrival below races nothing.
  collector.waitForWindowCount(2);

  engine.ingest(makeEvent({3, 0}, 7, 9.0, 9.0));  // epoch 0: sealed
  engine.drain();

  const auto windows = collector.windows();
  ASSERT_EQ(windows.count(0), 1u);
  EXPECT_EQ(windows.at(0).size(), 1u);  // the late row never made it in
  EXPECT_EQ(windows.at(0).count({{0, 0}, 1.0, 1.0}), 1u);
  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.late_dropped, 1u);
  engine.stop();
}

TEST(StreamEngine, StopDrainsBufferedWindows) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  // Nothing would seal by watermark: lateness far exceeds the stream.
  config.allowed_lateness = 1000000;
  StreamEngine engine(schema, config);
  WindowCollector collector;
  collector.install(engine);
  engine.start();

  const auto events = healthyGrid(config.window_width, 3);
  engine.ingestBatch(events);
  EXPECT_EQ(engine.stats().windows_sealed, 0u);
  engine.stop();  // drain-at-shutdown must flush every open window

  EXPECT_EQ(collector.windows(), groupByEpoch(events, config.window_width));
  EXPECT_EQ(engine.stats().windows_sealed, 3u);
}

TEST(StreamEngine, MalformedEventsAreRejectedNotFatal) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamEngine engine(schema, testConfig());
  engine.start();

  std::vector<StreamEvent> bad;
  bad.push_back(makeEvent({0}, 0, 1.0, 1.0));       // wrong arity
  bad.push_back(makeEvent({0, -1}, 0, 1.0, 1.0));   // wildcard slot
  bad.push_back(makeEvent({4, 0}, 0, 1.0, 1.0));    // out of range
  bad.push_back(makeEvent({3, 2}, 0, 1.0, 1.0));    // valid
  const PushResult result = engine.ingestBatch(std::move(bad));
  EXPECT_EQ(result.accepted, 1u);
  engine.stop();

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 3u);
  EXPECT_EQ(stats.ingested, 1u);
  EXPECT_EQ(stats.windows_sealed, 1u);
}

TEST(StreamEngine, InvalidEventsAreQuarantinedWithReasons) {
  const auto schema = dataset::Schema::synthetic({4, 3});
  StreamConfig config = testConfig();
  config.quarantine_capacity = 2;  // exercise the bounded-eviction path
  StreamEngine engine(schema, config);
  std::atomic<int> inspected{0};
  engine.setQuarantineCallback(
      [&inspected](const QuarantinedEvent& entry) {
        EXPECT_FALSE(entry.reason.empty());
        inspected += 1;
      });
  engine.start();

  std::vector<StreamEvent> bad;
  bad.push_back(makeEvent({0}, 0, 1.0, 1.0));  // wrong arity
  bad.push_back(makeEvent({0, -1}, 10, 1.0, 1.0));  // wildcard slot
  bad.push_back(makeEvent({3, 2}, 20, std::nan(""), 1.0));  // NaN value
  bad.push_back(
      makeEvent({3, 2}, 30, 1.0,
                std::numeric_limits<double>::infinity()));  // Inf forecast
  bad.push_back(makeEvent({3, 2}, 40, 1.0, 1.0));  // valid
  const PushResult result = engine.ingestBatch(std::move(bad));
  EXPECT_EQ(result.accepted, 1u);
  engine.stop();

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.rejected_quarantined, 4u);
  EXPECT_EQ(stats.quarantine_overflowed, 2u);  // capacity 2, 4 added
  EXPECT_EQ(inspected.load(), 4);

  // Only the newest two survive in the bounded buffer, oldest first.
  const auto quarantined = engine.takeQuarantined();
  ASSERT_EQ(quarantined.size(), 2u);
  EXPECT_EQ(quarantined[0].reason, "non-finite actual value");
  EXPECT_EQ(quarantined[1].reason, "non-finite forecast value");
  EXPECT_TRUE(engine.takeQuarantined().empty());
}

// ---------------------------------------------------------------------------
// Engine: stream-vs-batch localization equivalence.

TEST(StreamEngine, LocalizationMatchesBatchPipeline) {
  const auto schema = dataset::Schema::synthetic({6, 5, 4});
  gen::RapmdConfig gen_config;
  gen_config.num_cases = 3;
  gen_config.label_noise = 0.0;
  gen::RapmdGenerator generator(schema, gen_config, /*seed=*/7);

  StreamConfig config;
  config.shards = 4;
  config.window_width = 60;
  config.allowed_lateness = 1000000;  // reordering must not drop anything
  config.trigger = TriggerPolicy::kAnomalousWindow;
  config.detect_threshold = 0.095;
  StreamEngine engine(schema, config);
  engine.start();

  // One case per window; the batch reference runs the same detector +
  // miner on each case's table directly.
  std::vector<StreamEvent> events;
  std::vector<std::multiset<std::vector<dataset::ElemId>>> expected;
  const detect::RelativeDeviationDetector detector(config.detect_threshold);
  const core::RapMiner miner(config.miner);
  for (std::int32_t i = 0; i < gen_config.num_cases; ++i) {
    gen::Case c = generator.generateCase(i);
    dataset::LeafTable batch_table = c.table;
    detector.run(batch_table);
    std::multiset<std::vector<dataset::ElemId>> acs;
    for (const auto& p : miner.localize(batch_table, config.top_k).patterns) {
      acs.insert(p.ac.slots());
    }
    expected.push_back(std::move(acs));

    CaseEventsConfig source;
    source.epoch = i;
    source.window_width = config.window_width;
    source.shuffle_seed = 100 + static_cast<std::uint64_t>(i);
    auto case_events = eventsFromCase(c, source);
    events.insert(events.end(), case_events.begin(), case_events.end());
  }
  util::Rng rng(9);
  rng.shuffle(events);

  ReplaySource::Config replay;
  replay.producers = 4;
  replay.batch_size = 64;
  const PushResult result = ReplaySource(replay).run(engine, events);
  EXPECT_EQ(result.accepted, events.size());
  engine.drain();
  engine.stop();

  const auto localizations = engine.takeLocalizations();
  ASSERT_EQ(localizations.size(), expected.size());
  for (std::size_t i = 0; i < localizations.size(); ++i) {
    EXPECT_EQ(localizations[i].epoch, static_cast<std::int64_t>(i));
    EXPECT_GT(localizations[i].anomalous_rows, 0u);
    std::multiset<std::vector<dataset::ElemId>> got;
    for (const auto& p : localizations[i].result.patterns) {
      got.insert(p.ac.slots());
    }
    EXPECT_EQ(got, expected[i]) << "window " << i;
  }
}

// ---------------------------------------------------------------------------
// Engine: concurrency hammer (the ThreadSanitizer target).

TEST(StreamEngine, ManyProducersWithDropsAndMetricsStayConsistent) {
  obs::setMetricsEnabled(true);
  const auto schema = dataset::Schema::synthetic({8, 8});
  StreamConfig config;
  config.shards = 4;
  config.window_width = 100;
  config.allowed_lateness = 50;
  // Far below one ingest batch's per-shard share (~32 of 128 events), so
  // eviction is exercised deterministically, not by racing the consumer.
  config.queue_capacity = 16;
  config.backpressure = BackpressurePolicy::kDropOldest;
  config.trigger = TriggerPolicy::kAnomalousWindow;
  StreamEngine engine(schema, config);
  engine.start();

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 4000;
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> offered{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &offered, p] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(p));
      std::vector<StreamEvent> batch;
      for (int i = 0; i < kPerProducer; ++i) {
        const auto a = static_cast<dataset::ElemId>(rng.uniformInt(0, 7));
        const auto b = static_cast<dataset::ElemId>(rng.uniformInt(0, 7));
        batch.push_back(
            makeEvent({a, b}, rng.uniformInt(0, 999), 2.0, 2.0));
        if (batch.size() == 128) {
          offered.fetch_add(batch.size());
          engine.ingestBatch(std::move(batch));
          batch.clear();
        }
      }
      if (!batch.empty()) {
        offered.fetch_add(batch.size());
        engine.ingestBatch(std::move(batch));
      }
      // Interleave a malformed event to exercise rejection under load.
      engine.ingest(makeEvent({99, 0}, 0, 1.0, 1.0));
    });
  }
  for (auto& t : producers) t.join();
  engine.stop();
  obs::setMetricsEnabled(false);

  const StreamStats stats = engine.stats();
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(kProducers));
  // Arrival accounting: every offered event was either accepted into a
  // queue (kDropOldest admits all arrivals) or rejected on arrival.
  EXPECT_EQ(stats.ingested + stats.dropped_newest, offered.load());
  EXPECT_GT(stats.dropped_oldest, 0u);  // the tiny queues did overflow
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_GE(stats.windows_sealed, 1u);
  // Healthy traffic under kAnomalousWindow: sealing never localizes.
  EXPECT_EQ(stats.localizations, 0u);

  auto& reg = obs::defaultRegistry();
  EXPECT_GE(reg.counter("rap_stream_ingested_total").value(), stats.ingested);
  EXPECT_GE(reg.counter("rap_stream_windows_sealed_total").value(),
            stats.windows_sealed);
  EXPECT_EQ(reg.gauge("rap_stream_queue_depth").value(), 0.0);
}

// ---------------------------------------------------------------------------
// Gauge freshness and the pipeline lag collector.

TEST(StreamEngine, DrainRefreshesDepthAndWatermarkGauges) {
  obs::setMetricsEnabled(true);
  StreamConfig config = testConfig();
  StreamEngine engine(dataset::Schema::synthetic({4, 3}), config);
  engine.start();
  for (auto& event : healthyGrid(config.window_width, 3)) {
    engine.ingest(std::move(event));
  }
  engine.drain();

  // The drain itself must leave the gauges matching stats(), even though
  // no event moved after the last hot-path update.
  const StreamStats stats = engine.stats();
  auto& reg = obs::defaultRegistry();
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(reg.gauge("rap_stream_queue_depth").value(), 0.0);
  EXPECT_EQ(reg.gauge("rap_stream_watermark").value(),
            static_cast<double>(stats.watermark));
  engine.stop();
  obs::setMetricsEnabled(false);
}

TEST(PipelineLagCollector, SampleOncePublishesFreshGauges) {
  obs::MetricsRegistry registry;
  StreamConfig config = testConfig();
  config.allowed_lateness = 30;
  StreamEngine engine(dataset::Schema::synthetic({4, 3}), config);
  PipelineLagCollector::Options options;
  options.interval_seconds = 60.0;  // never fires; sampled by hand
  options.registry = &registry;
  PipelineLagCollector collector(engine, options);

  // Before any event: an idle pipeline reports zero lag, zero depth.
  collector.sampleOnce();
  EXPECT_EQ(collector.samplesTaken(), 1u);
  EXPECT_EQ(registry.gauge("rap_stream_watermark_lag_seconds").value(), 0.0);
  EXPECT_EQ(registry.gauge("rap_stream_queue_depth").value(), 0.0);
  for (std::int32_t i = 0; i < config.shards; ++i) {
    EXPECT_EQ(registry
                  .gauge("rap_stream_shard_queue_depth",
                         {{"shard", std::to_string(i)}})
                  .value(),
              0.0);
  }

  engine.start();
  for (auto& event : healthyGrid(config.window_width, 3)) {
    engine.ingest(std::move(event));
  }
  engine.drain();
  collector.sampleOnce();

  // After a full drain every epoch is sealed, so the sealed frontier has
  // caught up with the ingest frontier: lag is 0, depths are 0, and the
  // gauges agree with stats() exactly.
  const StreamStats stats = engine.stats();
  EXPECT_EQ(registry.gauge("rap_stream_watermark_lag_seconds").value(), 0.0);
  EXPECT_EQ(registry.gauge("rap_stream_queue_depth").value(),
            static_cast<double>(stats.queue_depth));
  EXPECT_EQ(registry.gauge("rap_stream_watermark").value(),
            static_cast<double>(stats.watermark));
  EXPECT_EQ(registry.gauge("rap_stream_localize_pool_in_flight").value(), 0.0);
  EXPECT_EQ(registry.gauge("rap_stream_localize_pool_utilization").value(),
            0.0);
  EXPECT_EQ(collector.samplesTaken(), 2u);
  engine.stop();
}

TEST(PipelineLagCollector, ReportsEventTimeLagWhileSealingIsBehind) {
  obs::MetricsRegistry registry;
  StreamConfig config = testConfig();
  config.shards = 1;
  config.allowed_lateness = 0;
  StreamEngine engine(dataset::Schema::synthetic({4, 3}), config);
  PipelineLagCollector::Options options;
  options.interval_seconds = 60.0;
  options.registry = &registry;
  PipelineLagCollector collector(engine, options);

  engine.start();
  engine.ingest(makeEvent({0, 0}, 119, 1.0, 1.0));  // epoch 1 of width 60
  // Wait until the shard has observed the event and set the watermark.
  for (int i = 0;
       i < 1000 && engine.stats().watermark == WatermarkTracker::kNone; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  collector.sampleOnce();
  // The watermark sits at 119 while sealing can reach at most the end of
  // epoch 0 (event time 60): 59 seconds of event time are buffered
  // unsealed.  The value is the same whether or not the shard has sealed
  // epoch 0 yet, so the assertion is race-free.
  EXPECT_DOUBLE_EQ(registry.gauge("rap_stream_watermark_lag_seconds").value(),
                   119.0 - 60.0);
  engine.stop();
}

TEST(StreamEngine, OwnsLagCollectorWhenConfigured) {
  obs::setMetricsEnabled(true);
  StreamConfig config = testConfig();
  config.lag_sample_interval_seconds = 0.001;
  StreamEngine engine(dataset::Schema::synthetic({4, 3}), config);
  engine.start();
  for (auto& event : healthyGrid(config.window_width, 2)) {
    engine.ingest(std::move(event));
  }
  engine.drain();
  // Let the background sampler tick at least once against live state.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.stop();
  obs::setMetricsEnabled(false);
  auto& reg = obs::defaultRegistry();
  // The engine-owned collector published the per-shard depth series.
  EXPECT_EQ(reg.gauge("rap_stream_shard_queue_depth", {{"shard", "0"}})
                .value(),
            0.0);
}

}  // namespace
}  // namespace rap::stream
