// Admin HTTP server: socket-level endpoint tests on ephemeral ports,
// plus the engine-aware /healthz and /statusz glue under concurrent
// ingest.  Every test binds port 0 so suites can run in parallel.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/admin_server.h"
#include "obs/build_info.h"
#include "obs/query_params.h"
#include "stream/admin.h"
#include "stream/engine.h"

namespace rap {
namespace {

/// Minimal blocking HTTP client: one request, whole response as text.
std::string httpRequest(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string httpGet(std::uint16_t port, const std::string& target) {
  return httpRequest(port, "GET " + target +
                               " HTTP/1.1\r\nHost: localhost\r\n"
                               "Connection: close\r\n\r\n");
}

int statusOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos) return -1;
  return std::atoi(response.c_str() + sp + 1);
}

std::string bodyOf(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(AdminServer, BindsEphemeralPortAndDispatchesByPath) {
  obs::AdminServer server;
  server.handle("/hello", [](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "hi\n", {}};
  });
  ASSERT_TRUE(server.start().isOk());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string ok = httpGet(server.port(), "/hello");
  EXPECT_EQ(statusOf(ok), 200);
  EXPECT_EQ(bodyOf(ok), "hi\n");

  EXPECT_EQ(statusOf(httpGet(server.port(), "/nope")), 404);

  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.requestsServed(), 2u);
}

TEST(AdminServer, RejectsNonGetAndGarbage) {
  obs::AdminServer server;
  server.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.start().isOk());
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "POST /x HTTP/1.1\r\n\r\n")),
            405);
  EXPECT_EQ(statusOf(httpRequest(server.port(), "garbage\r\n\r\n")), 400);
  // HEAD is served headers-only.
  const std::string head =
      httpRequest(server.port(), "HEAD /x HTTP/1.1\r\n\r\n");
  EXPECT_EQ(statusOf(head), 200);
  EXPECT_EQ(bodyOf(head), "");
}

TEST(AdminServer, HandlerExceptionBecomes500) {
  obs::AdminServer server;
  server.handle("/boom", [](const obs::HttpRequest&) -> obs::HttpResponse {
    throw std::runtime_error("kaput");
  });
  ASSERT_TRUE(server.start().isOk());
  const std::string response = httpGet(server.port(), "/boom");
  EXPECT_EQ(statusOf(response), 500);
  EXPECT_NE(bodyOf(response).find("kaput"), std::string::npos);
}

TEST(AdminServer, SecondBindOnSamePortFailsWithStatus) {
  obs::AdminServer first;
  first.handle("/", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(first.start().isOk());
  obs::AdminServer::Options options;
  options.port = first.port();
  obs::AdminServer second(options);
  second.handle("/", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  EXPECT_FALSE(second.start().isOk());
  EXPECT_FALSE(second.running());
}

TEST(AdminServer, ServesObsEndpointsFromIsolatedRegistry) {
  obs::MetricsRegistry registry;
  registry.counter("admin_test_total").increment(7);
  obs::TraceRecorder recorder;
  obs::TraceEvent span;
  span.name = "unit/span";
  span.ts_us = 10;
  span.dur_us = 5;
  recorder.record(span);

  obs::AdminServer server;
  obs::registerObsEndpoints(server, &registry, &recorder);
  ASSERT_TRUE(server.start().isOk());

  const std::string metrics = httpGet(server.port(), "/metrics");
  EXPECT_EQ(statusOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("admin_test_total 7"), std::string::npos);
  // Every scrape carries the build-identity gauge.
  EXPECT_NE(metrics.find("rap_build_info{"), std::string::npos);

  const std::string json = httpGet(server.port(), "/metrics.json");
  EXPECT_EQ(statusOf(json), 200);
  EXPECT_NE(bodyOf(json).find("\"admin_test_total\""), std::string::npos);

  const std::string tracez = httpGet(server.port(), "/tracez?limit=8");
  EXPECT_EQ(statusOf(tracez), 200);
  EXPECT_NE(bodyOf(tracez).find("\"unit/span\""), std::string::npos);

  const std::string health = httpGet(server.port(), "/healthz");
  EXPECT_EQ(statusOf(health), 200);
  EXPECT_EQ(bodyOf(health), "ok\n");
}

TEST(AdminServer, ConcurrentScrapesAllSucceed) {
  obs::MetricsRegistry registry;
  registry.counter("spam_total").increment();
  obs::AdminServer server;
  obs::registerObsEndpoints(server, &registry);
  ASSERT_TRUE(server.start().isOk());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kThreads; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (statusOf(httpGet(server.port(), "/metrics")) == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_GE(server.requestsServed(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(RenderTracez, KeepsNewestEventsInTimestampOrder) {
  obs::TraceRecorder recorder;
  for (int i = 0; i < 5; ++i) {
    obs::TraceEvent event;
    event.name = i % 2 == 0 ? "even" : "odd";
    event.ts_us = static_cast<std::uint64_t>(100 - i);  // reverse order
    recorder.record(event);
  }
  const std::string doc = obs::renderTracez(recorder, 2);
  EXPECT_NE(doc.find("\"total\":5"), std::string::npos);
  // Newest two by timestamp are ts 99 ("odd") then ts 100 ("even").
  const std::size_t odd = doc.find("\"odd\"");
  const std::size_t even = doc.find("\"even\"");
  ASSERT_NE(odd, std::string::npos);
  ASSERT_NE(even, std::string::npos);
  EXPECT_LT(odd, even);
}

// ---------------------------------------------------------------------------
// POST routes and hostile-client hardening.

TEST(AdminServer, PostRouteReceivesBodyAndHeaders) {
  obs::AdminServer server;
  server.handlePost("/echo", [](const obs::HttpRequest& request) {
    const std::string* type = request.header("content-type");
    return obs::HttpResponse{200, "text/plain; charset=utf-8",
                             (type != nullptr ? *type : "none") + "|" +
                                 request.body,
                             {}};
  });
  ASSERT_TRUE(server.start().isOk());

  const std::string response = httpRequest(
      server.port(),
      "POST /echo HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Type: text/csv\r\nContent-Length: 11\r\n\r\nhello,world");
  EXPECT_EQ(statusOf(response), 200);
  EXPECT_EQ(bodyOf(response), "text/csv|hello,world");

  // GET on a POST-only route is a method mismatch.
  EXPECT_EQ(statusOf(httpGet(server.port(), "/echo")), 405);
}

TEST(AdminServer, PrefixRoutesMatchLongestRegisteredPrefix) {
  obs::AdminServer server;
  server.handlePrefix("/jobs/", [](const obs::HttpRequest& request) {
    return obs::HttpResponse{200, "text/plain; charset=utf-8",
                             "job:" + request.path, {}};
  });
  ASSERT_TRUE(server.start().isOk());
  const std::string response = httpGet(server.port(), "/jobs/42");
  EXPECT_EQ(statusOf(response), 200);
  EXPECT_EQ(bodyOf(response), "job:/jobs/42");
  EXPECT_EQ(statusOf(httpGet(server.port(), "/jobs")), 404);
}

TEST(AdminServer, PostWithoutContentLengthIs411) {
  obs::AdminServer server;
  server.handlePost("/p", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.start().isOk());
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "POST /p HTTP/1.1\r\nHost: x\r\n\r\n")),
            411);
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "POST /p HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: banana\r\n\r\n")),
            400);
}

TEST(AdminServer, OversizedDeclaredBodyIs413) {
  obs::AdminServer::Options options;
  options.max_body_bytes = 64;
  obs::AdminServer server(options);
  server.handlePost("/p", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.start().isOk());
  // The body is never sent: the declared length alone must be refused.
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "POST /p HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: 65\r\n\r\n")),
            413);
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "POST /p HTTP/1.1\r\nHost: x\r\n"
                                 "Content-Length: 5\r\n\r\nabcde")),
            200);
}

TEST(AdminServer, OversizedHeaderSectionIs431) {
  obs::AdminServer::Options options;
  options.max_header_bytes = 256;
  obs::AdminServer server(options);
  server.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.start().isOk());
  const std::string padding(512, 'a');
  EXPECT_EQ(statusOf(httpRequest(server.port(),
                                 "GET /x HTTP/1.1\r\nX-Pad: " + padding +
                                     "\r\n\r\n")),
            431);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/x")), 200);
}

TEST(AdminServer, StalledClientIs408NotAHungWorker) {
  obs::AdminServer::Options options;
  options.read_timeout_seconds = 0.2;
  obs::AdminServer server(options);
  server.handle("/x", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.start().isOk());
  // Send half a request line and then stall; the server must time the
  // read out and answer 408 rather than wait on the socket forever.
  const std::string response =
      httpRequest(server.port(), "GET /x HT");  // no terminator, recv blocks
  EXPECT_EQ(statusOf(response), 408);
}

TEST(AdminServer, TracezRejectsGarbledLimit) {
  obs::TraceRecorder recorder;
  obs::AdminServer server;
  obs::registerObsEndpoints(server, nullptr, &recorder);
  ASSERT_TRUE(server.start().isOk());
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=abc")), 400);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=-1")), 400);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=12x")), 400);
  // The strtoll-lenient spellings the strict parser must refuse: an
  // explicit '+', percent-encoded whitespace (values are deliberately
  // not percent-decoded), and a sign with no digits.
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=+5")), 400);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=%205")), 400);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=-")), 400);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez?limit=3")), 200);
  EXPECT_EQ(statusOf(httpGet(server.port(), "/tracez")), 200);
}

TEST(HttpRequest, QueryIntStrictRejectsLenientSpellings) {
  // queryIntStrict used to call strtoll directly, which silently skips
  // leading whitespace and accepts '+'; it now routes through the one
  // shared obs::parseQueryInt, so both paths agree on what an integer is.
  obs::HttpRequest request;
  using R = obs::HttpRequest::QueryIntResult;
  std::int64_t out = 0;

  request.query = "limit=5&neg=-7&plus=+5&pad= 5&tab=\t5&empty=&dash=-"
                  "&huge=99999999999999999999&zero=0";
  EXPECT_EQ(request.queryIntStrict("limit", &out), R::kValid);
  EXPECT_EQ(out, 5);
  EXPECT_EQ(request.queryIntStrict("neg", &out), R::kValid);
  EXPECT_EQ(out, -7);
  EXPECT_EQ(request.queryIntStrict("zero", &out), R::kValid);
  EXPECT_EQ(out, 0);
  EXPECT_EQ(request.queryIntStrict("absent", &out), R::kAbsent);
  EXPECT_EQ(request.queryIntStrict("plus", &out), R::kInvalid);
  EXPECT_EQ(request.queryIntStrict("pad", &out), R::kInvalid);
  EXPECT_EQ(request.queryIntStrict("tab", &out), R::kInvalid);
  EXPECT_EQ(request.queryIntStrict("empty", &out), R::kInvalid);
  EXPECT_EQ(request.queryIntStrict("dash", &out), R::kInvalid);
  EXPECT_EQ(request.queryIntStrict("huge", &out), R::kInvalid);
}

TEST(QueryParams, ParseQueryIntIsStrict) {
  EXPECT_TRUE(obs::parseQueryInt("42").isOk());
  EXPECT_EQ(obs::parseQueryInt("42").value(), 42);
  EXPECT_EQ(obs::parseQueryInt("-42").value(), -42);
  EXPECT_EQ(obs::parseQueryInt("0").value(), 0);
  for (const char* bad : {"", "-", "+5", " 5", "5 ", "\t5", "5x", "x5",
                          "1.5", "0x10", "--3", "9223372036854775808"}) {
    EXPECT_FALSE(obs::parseQueryInt(bad).isOk()) << "'" << bad << "'";
  }
  // int64 boundaries themselves are accepted.
  EXPECT_EQ(obs::parseQueryInt("9223372036854775807").value(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(obs::parseQueryInt("-9223372036854775808").value(),
            std::numeric_limits<std::int64_t>::min());
}

// ---------------------------------------------------------------------------
// Engine-aware endpoints.

dataset::Schema adminSchema() { return dataset::Schema::synthetic({3, 2}); }

stream::StreamEvent eventAt(std::int64_t ts, dataset::ElemId a,
                            dataset::ElemId b, double v, double f) {
  stream::StreamEvent event;
  event.leaf = dataset::AttributeCombination({a, b});
  event.ts = ts;
  event.v = v;
  event.f = f;
  return event;
}

TEST(EngineAdmin, HealthzTracksEngineLifecycleAndStatuszIsLive) {
  stream::StreamConfig config;
  config.shards = 2;
  config.window_width = 10;
  config.trigger = stream::TriggerPolicy::kEveryWindow;
  stream::StreamEngine engine(adminSchema(), config);

  obs::AdminServer server;
  obs::registerObsEndpoints(server);
  stream::installEngineAdminEndpoints(server, engine);
  ASSERT_TRUE(server.start().isOk());

  // Not started yet: the readiness probe must say so.
  EXPECT_EQ(statusOf(httpGet(server.port(), "/healthz")), 503);

  engine.start();
  EXPECT_EQ(statusOf(httpGet(server.port(), "/healthz")), 200);

  // Scrape /statusz concurrently with ingest and a drain — the handler
  // may only touch thread-safe engine state.
  std::atomic<bool> scraping{true};
  std::atomic<int> scrapes_ok{0};
  std::thread scraper([&] {
    while (scraping.load()) {
      const std::string response = httpGet(server.port(), "/statusz");
      if (statusOf(response) == 200 &&
          bodyOf(response).find("\"pipeline\"") != std::string::npos) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::int64_t ts = 0; ts < 300; ++ts) {
    engine.ingest(eventAt(ts, static_cast<dataset::ElemId>(ts % 3),
                          static_cast<dataset::ElemId>(ts % 2), 1.0, 1.0));
  }
  engine.drain();
  scraping.store(false);
  scraper.join();
  EXPECT_GT(scrapes_ok.load(), 0);

  const std::string statusz = bodyOf(httpGet(server.port(), "/statusz"));
  EXPECT_NE(statusz.find("\"running\":true"), std::string::npos);
  EXPECT_NE(statusz.find("\"ingested\":300"), std::string::npos);
  EXPECT_NE(statusz.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(statusz.find("\"build\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"shard_queue_depths\":[0,0]"), std::string::npos);

  engine.stop();
  EXPECT_EQ(statusOf(httpGet(server.port(), "/healthz")), 503);
  const std::string stopped = bodyOf(httpGet(server.port(), "/statusz"));
  EXPECT_NE(stopped.find("\"running\":false"), std::string::npos);
}

TEST(EngineAdmin, RenderStatuszIsWellFormedBeforeStart) {
  stream::StreamConfig config;
  config.shards = 1;
  config.window_width = 5;
  stream::StreamEngine engine(adminSchema(), config);
  const std::string doc = stream::renderStatusz(engine, nullptr);
  // Event-time sentinels render as null, not INT64_MIN.
  EXPECT_NE(doc.find("\"watermark\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"max_event_ts\":null"), std::string::npos);
  EXPECT_NE(doc.find("\"uptime_seconds\":0.000"), std::string::npos);
  EXPECT_EQ(doc.find("\"admin\""), std::string::npos);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
}

}  // namespace
}  // namespace rap
