#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "alarm/monitor.h"
#include "util/rng.h"

namespace rap::alarm {
namespace {

/// Diurnal signal with mild noise.
double signal(std::int64_t t, std::int32_t period, util::Rng& rng) {
  const double base =
      100.0 + 40.0 * std::sin(2.0 * std::numbers::pi *
                              static_cast<double>(t % period) /
                              static_cast<double>(period));
  return base * (1.0 + 0.02 * rng.gaussian());
}

MonitorConfig testConfig() {
  MonitorConfig config;
  config.season_length = 48;
  config.seasons_kept = 5;
  config.k_mad = 6.0;
  return config;
}

TEST(KpiMonitor, QuietOnHealthySeasonalTraffic) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(1);
  int false_alarms = 0;
  for (std::int64_t t = 0; t < 48 * 10; ++t) {
    false_alarms += monitor.observe(signal(t, 48, rng)).anomalous ? 1 : 0;
  }
  EXPECT_LE(false_alarms, 2);
}

TEST(KpiMonitor, FlagsASharpDrop) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(2);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  // 50% outage.
  const auto verdict = monitor.observe(signal(t, 48, rng) * 0.5);
  EXPECT_TRUE(verdict.anomalous);
  EXPECT_LT(verdict.residual, 0.0);
  EXPECT_GT(verdict.scale, 0.0);
}

TEST(KpiMonitor, DropsOnlyIgnoresSpikesByDefault) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(3);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  EXPECT_FALSE(monitor.observe(signal(t, 48, rng) * 2.0).anomalous);

  MonitorConfig two_sided = testConfig();
  two_sided.drops_only = false;
  KpiMonitor spiky(two_sided);
  util::Rng rng2(3);
  for (t = 0; t < 48 * 6; ++t) spiky.observe(signal(t, 48, rng2));
  EXPECT_TRUE(spiky.observe(signal(t, 48, rng2) * 2.0).anomalous);
}

TEST(KpiMonitor, WarmupSuppressesEarlyVerdicts) {
  MonitorConfig config = testConfig();
  config.warmup = 100;
  KpiMonitor monitor(config);
  for (int t = 0; t < 50; ++t) {
    EXPECT_FALSE(monitor.observe(t % 2 == 0 ? 100.0 : 0.0).anomalous);
  }
}

TEST(KpiMonitor, BaselineTracksSeasonalPhase) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(5);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  const auto verdict = monitor.observe(signal(t, 48, rng));
  const double expected =
      100.0 + 40.0 * std::sin(2.0 * std::numbers::pi *
                              static_cast<double>(t % 48) / 48.0);
  EXPECT_NEAR(verdict.baseline, expected, 8.0);
}

TEST(AlarmManager, RequiresConsecutiveAbnormalPoints) {
  AlarmManager manager(testConfig(), {.consecutive = 3, .cooldown = 10});
  util::Rng rng(7);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));

  // One bad point: no alarm.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  // A healthy point resets the streak.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng)).has_value());
  ++t;
  // Three bad points in a row: alarm on the third.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  const auto event = manager.observe(signal(t, 48, rng) * 0.4);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(manager.state(), AlarmState::kRaised);
  EXPECT_EQ(manager.events().size(), 1u);
}

TEST(AlarmManager, DoesNotRefireWhileRaised) {
  AlarmManager manager(testConfig(), {.consecutive = 2, .cooldown = 5});
  util::Rng rng(9);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));
  int fired = 0;
  for (int i = 0; i < 20; ++i, ++t) {
    fired += manager.observe(signal(t, 48, rng) * 0.4).has_value() ? 1 : 0;
  }
  EXPECT_EQ(fired, 1);
}

TEST(AlarmManager, RecoversAndCanRefireAfterCooldown) {
  AlarmManager manager(testConfig(), {.consecutive = 2, .cooldown = 4});
  util::Rng rng(11);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));
  // First outage.
  for (int i = 0; i < 4; ++i, ++t) manager.observe(signal(t, 48, rng) * 0.4);
  EXPECT_EQ(manager.events().size(), 1u);
  // Recovery.
  for (int i = 0; i < 10; ++i, ++t) manager.observe(signal(t, 48, rng));
  EXPECT_EQ(manager.state(), AlarmState::kQuiet);
  // Second outage fires again.
  for (int i = 0; i < 4; ++i, ++t) manager.observe(signal(t, 48, rng) * 0.4);
  EXPECT_EQ(manager.events().size(), 2u);
}

}  // namespace
}  // namespace rap::alarm
