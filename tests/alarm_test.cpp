#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <numbers>
#include <vector>

#include "alarm/monitor.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace rap::alarm {
namespace {

MonitorConfig testConfig();

/// Brute-force reference for KpiMonitor: full-history FIFO, fresh median
/// scans every observation.  The production monitor keeps per-phase
/// buffers and a running median instead; its verdicts must match this
/// formulation bit for bit.
class ReferenceMonitor {
 public:
  explicit ReferenceMonitor(MonitorConfig config) : config_(config) {}

  Verdict observe(double value) {
    Verdict verdict;
    verdict.baseline = baseline();
    verdict.residual = value - verdict.baseline;
    verdict.scale = scale();

    const bool warm = samples_seen_ >= config_.warmup;
    if (warm && verdict.scale > 0.0) {
      const double deviation =
          config_.drops_only ? -verdict.residual : std::fabs(verdict.residual);
      verdict.anomalous = deviation > config_.k_mad * verdict.scale;
    }

    if (!verdict.anomalous) residuals_.push_back(verdict.residual);
    history_.push_back(value);
    const auto horizon = static_cast<std::size_t>(config_.season_length) *
                         static_cast<std::size_t>(config_.seasons_kept);
    while (history_.size() > horizon) history_.pop_front();
    while (residuals_.size() > horizon) residuals_.pop_front();
    samples_seen_ += 1;
    return verdict;
  }

 private:
  double baseline() const {
    const auto m = static_cast<std::size_t>(config_.season_length);
    std::vector<double> phase_samples;
    for (std::size_t back = m; back <= history_.size(); back += m) {
      phase_samples.push_back(history_[history_.size() - back]);
    }
    if (phase_samples.size() >= 2) return stats::median(phase_samples);
    const std::size_t window = std::min<std::size_t>(history_.size(), 64);
    if (window == 0) return 0.0;
    std::vector<double> recent(
        history_.end() - static_cast<std::ptrdiff_t>(window), history_.end());
    return stats::median(recent);
  }

  double scale() const {
    if (residuals_.size() < 8) return 0.0;
    std::vector<double> abs_residuals;
    abs_residuals.reserve(residuals_.size());
    for (const double r : residuals_) abs_residuals.push_back(std::fabs(r));
    return 1.4826 * stats::median(abs_residuals);
  }

  MonitorConfig config_;
  std::deque<double> history_;
  std::deque<double> residuals_;
  std::int64_t samples_seen_ = 0;
};

void expectBitIdentical(MonitorConfig config, std::uint64_t seed,
                        std::int64_t samples, std::int32_t period) {
  KpiMonitor monitor(config);
  ReferenceMonitor reference(config);
  util::Rng fast_rng(seed);
  util::Rng ref_rng(seed);
  for (std::int64_t t = 0; t < samples; ++t) {
    double value = 100.0 +
                   40.0 * std::sin(2.0 * std::numbers::pi *
                                   static_cast<double>(t % period) /
                                   static_cast<double>(period));
    value *= 1.0 + 0.05 * fast_rng.gaussian();
    ref_rng.gaussian();  // keep the streams aligned
    // Sprinkle outages so the anomalous branch (residual withheld from
    // the scale estimate) is exercised too.
    if (t % 97 == 96) value *= 0.3;
    const Verdict got = monitor.observe(value);
    const Verdict want = reference.observe(value);
    ASSERT_EQ(got.anomalous, want.anomalous) << "sample " << t;
    ASSERT_EQ(got.baseline, want.baseline) << "sample " << t;
    ASSERT_EQ(got.residual, want.residual) << "sample " << t;
    ASSERT_EQ(got.scale, want.scale) << "sample " << t;
  }
}

TEST(KpiMonitor, MatchesBruteForceReferenceBitForBit) {
  // Long enough that the horizon (48*5 = 240) evicts for most of the run.
  expectBitIdentical(testConfig(), 21, 48 * 30, 48);
}

TEST(KpiMonitor, MatchesReferenceWithTinyHorizonBelowFallbackWindow) {
  // horizon = 4*3 = 12 < 64: the cold-start fallback window is capped by
  // the horizon, not by its own width.
  MonitorConfig config;
  config.season_length = 4;
  config.seasons_kept = 3;
  config.k_mad = 6.0;
  config.warmup = 8;
  expectBitIdentical(config, 23, 500, 4);
}

TEST(KpiMonitor, MatchesReferenceTwoSided) {
  MonitorConfig config = testConfig();
  config.drops_only = false;
  config.seasons_kept = 2;
  expectBitIdentical(config, 29, 48 * 12, 48);
}

/// Diurnal signal with mild noise.
double signal(std::int64_t t, std::int32_t period, util::Rng& rng) {
  const double base =
      100.0 + 40.0 * std::sin(2.0 * std::numbers::pi *
                              static_cast<double>(t % period) /
                              static_cast<double>(period));
  return base * (1.0 + 0.02 * rng.gaussian());
}

MonitorConfig testConfig() {
  MonitorConfig config;
  config.season_length = 48;
  config.seasons_kept = 5;
  config.k_mad = 6.0;
  return config;
}

TEST(KpiMonitor, QuietOnHealthySeasonalTraffic) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(1);
  int false_alarms = 0;
  for (std::int64_t t = 0; t < 48 * 10; ++t) {
    false_alarms += monitor.observe(signal(t, 48, rng)).anomalous ? 1 : 0;
  }
  EXPECT_LE(false_alarms, 2);
}

TEST(KpiMonitor, FlagsASharpDrop) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(2);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  // 50% outage.
  const auto verdict = monitor.observe(signal(t, 48, rng) * 0.5);
  EXPECT_TRUE(verdict.anomalous);
  EXPECT_LT(verdict.residual, 0.0);
  EXPECT_GT(verdict.scale, 0.0);
}

TEST(KpiMonitor, DropsOnlyIgnoresSpikesByDefault) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(3);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  EXPECT_FALSE(monitor.observe(signal(t, 48, rng) * 2.0).anomalous);

  MonitorConfig two_sided = testConfig();
  two_sided.drops_only = false;
  KpiMonitor spiky(two_sided);
  util::Rng rng2(3);
  for (t = 0; t < 48 * 6; ++t) spiky.observe(signal(t, 48, rng2));
  EXPECT_TRUE(spiky.observe(signal(t, 48, rng2) * 2.0).anomalous);
}

TEST(KpiMonitor, WarmupSuppressesEarlyVerdicts) {
  MonitorConfig config = testConfig();
  config.warmup = 100;
  KpiMonitor monitor(config);
  for (int t = 0; t < 50; ++t) {
    EXPECT_FALSE(monitor.observe(t % 2 == 0 ? 100.0 : 0.0).anomalous);
  }
}

TEST(KpiMonitor, BaselineTracksSeasonalPhase) {
  KpiMonitor monitor(testConfig());
  util::Rng rng(5);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) monitor.observe(signal(t, 48, rng));
  const auto verdict = monitor.observe(signal(t, 48, rng));
  const double expected =
      100.0 + 40.0 * std::sin(2.0 * std::numbers::pi *
                              static_cast<double>(t % 48) / 48.0);
  EXPECT_NEAR(verdict.baseline, expected, 8.0);
}

TEST(AlarmManager, RequiresConsecutiveAbnormalPoints) {
  AlarmManager manager(testConfig(), {.consecutive = 3, .cooldown = 10});
  util::Rng rng(7);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));

  // One bad point: no alarm.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  // A healthy point resets the streak.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng)).has_value());
  ++t;
  // Three bad points in a row: alarm on the third.
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  EXPECT_FALSE(manager.observe(signal(t, 48, rng) * 0.4).has_value());
  ++t;
  const auto event = manager.observe(signal(t, 48, rng) * 0.4);
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(manager.state(), AlarmState::kRaised);
  EXPECT_EQ(manager.events().size(), 1u);
}

TEST(AlarmManager, DoesNotRefireWhileRaised) {
  AlarmManager manager(testConfig(), {.consecutive = 2, .cooldown = 5});
  util::Rng rng(9);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));
  int fired = 0;
  for (int i = 0; i < 20; ++i, ++t) {
    fired += manager.observe(signal(t, 48, rng) * 0.4).has_value() ? 1 : 0;
  }
  EXPECT_EQ(fired, 1);
}

TEST(AlarmManager, RecoversAndCanRefireAfterCooldown) {
  AlarmManager manager(testConfig(), {.consecutive = 2, .cooldown = 4});
  util::Rng rng(11);
  std::int64_t t = 0;
  for (; t < 48 * 6; ++t) manager.observe(signal(t, 48, rng));
  // First outage.
  for (int i = 0; i < 4; ++i, ++t) manager.observe(signal(t, 48, rng) * 0.4);
  EXPECT_EQ(manager.events().size(), 1u);
  // Recovery.
  for (int i = 0; i < 10; ++i, ++t) manager.observe(signal(t, 48, rng));
  EXPECT_EQ(manager.state(), AlarmState::kQuiet);
  // Second outage fires again.
  for (int i = 0; i < 4; ++i, ++t) manager.observe(signal(t, 48, rng) * 0.4);
  EXPECT_EQ(manager.events().size(), 2u);
}

}  // namespace
}  // namespace rap::alarm
