#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/logging.h"

namespace rap::obs {
namespace {

// ---------------------------------------------------------------- Counter

TEST(Counter, StartsAtZeroAndIncrements) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.increment();
  c.increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------------ Gauge

TEST(Gauge, SetAndAdd) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Gauge, ConcurrentAddsAreLossless) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BucketsByUpperBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive)
  h.observe(5.0);    // <= 10
  h.observe(100.5);  // +Inf
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.5);
}

TEST(Histogram, ConcurrentObservesPreserveCount) {
  Histogram h(exponentialBuckets(1e-3, 10.0, 4));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t) * 0.01);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto c : h.bucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(Histogram, BucketHelpers) {
  EXPECT_EQ(exponentialBuckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(linearBuckets(0.0, 0.5, 3), (std::vector<double>{0.0, 0.5, 1.0}));
}

// --------------------------------------------------------------- Registry

TEST(MetricsRegistry, SameNameAndLabelsSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x_total");
  Counter& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.increment();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsRegistry, DistinctLabelsDistinctSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x_total", {{"layer", "1"}});
  Counter& b = registry.counter("x_total", {{"layer", "2"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(registry.seriesCount(), 2u);
}

TEST(MetricsRegistry, ConcurrentLookupsAndIncrements) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.counter("hot_total").increment();
        registry.counter("labeled_total", {{"shard", std::to_string(i % 3)}})
            .increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("hot_total").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t labeled = 0;
  for (int shard = 0; shard < 3; ++shard) {
    labeled += registry.counter("labeled_total",
                                {{"shard", std::to_string(shard)}})
                   .value();
  }
  EXPECT_EQ(labeled, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry registry;
  registry.counter("rap_test_events_total", {{"kind", "a"}}).increment(3);
  registry.gauge("rap_test_state").set(1.0);
  Histogram& h = registry.histogram("rap_test_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = registry.renderPrometheus();
  EXPECT_NE(text.find("# TYPE rap_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rap_test_events_total{kind=\"a\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rap_test_state gauge"), std::string::npos);
  EXPECT_NE(text.find("rap_test_state 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rap_test_seconds histogram"), std::string::npos);
  // Cumulative buckets: 1 at le=0.1, 2 at le=1, 3 at +Inf.
  EXPECT_NE(text.find("rap_test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rap_test_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rap_test_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rap_test_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("rap_test_seconds_sum"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapesHostileLabelValues) {
  MetricsRegistry registry;
  // Exposition-spec escapes inside a label value: backslash, double
  // quote, and line feed.  A raw newline would split the sample line and
  // corrupt the whole scrape.
  registry.counter("rap_test_total", {{"path", "C:\\tmp\\\"x\"\nnext"}})
      .increment();
  const std::string text = registry.renderPrometheus();
  EXPECT_NE(
      text.find("rap_test_total{path=\"C:\\\\tmp\\\\\\\"x\\\"\\nnext\"} 1"),
      std::string::npos);
  // No literal newline may survive inside the braces.
  const std::size_t open = text.find("rap_test_total{");
  ASSERT_NE(open, std::string::npos);
  const std::size_t close = text.find('}', open);
  ASSERT_NE(close, std::string::npos);
  EXPECT_EQ(text.substr(open, close - open).find('\n'), std::string::npos);
  // The JSON exposition of the same series must stay valid JSON (its
  // own escaping, not Prometheus's).
  const std::string json = registry.renderJson();
  EXPECT_NE(json.find("C:\\\\tmp\\\\\\\"x\\\"\\nnext"), std::string::npos);
}

TEST(BuildInfo, GaugeCarriesBinaryIdentity) {
  MetricsRegistry registry;
  registerBuildInfo(registry);
  registerBuildInfo(registry);  // idempotent: still one series
  EXPECT_EQ(registry.seriesCount(), 1u);
  const std::string text = registry.renderPrometheus();
  const BuildInfo& info = buildInfo();
  EXPECT_NE(text.find("# TYPE rap_build_info gauge"), std::string::npos);
  EXPECT_NE(text.find(std::string("version=\"") + info.version + "\""),
            std::string::npos);
  EXPECT_NE(text.find(std::string("build_type=\"") + info.build_type + "\""),
            std::string::npos);
  EXPECT_NE(text.find(std::string("fault_injection=\"") +
                      (info.fault_injection ? "on" : "off") + "\""),
            std::string::npos);
  EXPECT_NE(buildInfoJson().find("\"compiler\":"), std::string::npos);
}

TEST(MetricsRegistry, JsonExposition) {
  MetricsRegistry registry;
  registry.counter("events_total", {{"kind", "x"}}).increment(7);
  registry.histogram("lat_seconds", {0.5}).observe(0.25);

  const std::string json = registry.renderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"name\":\"events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"kind\":\"x\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistry, GlobalGateDefaultsOff) {
  // The process-wide gate must start disabled so uninstrumented binaries
  // pay nothing; tests that enable it restore the default.
  EXPECT_FALSE(metricsEnabled());
}

// ------------------------------------------------------------------ Trace

TEST(Trace, DisabledSpansRecordNothing) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  ASSERT_FALSE(tracingEnabled());
  {
    RAP_TRACE_SPAN("should_not_appear", {{"x", 1}});
  }
  EXPECT_EQ(recorder.eventCount(), 0u);
}

TEST(Trace, NestedSpansAreContainedIntervals) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  setTracingEnabled(true);
  {
    RAP_TRACE_SPAN("outer", {{"layer", 1}});
    {
      RAP_TRACE_SPAN("inner", {{"layer", 2}, {"note", "deep"}});
    }
  }
  setTracingEnabled(false);

  const auto events = recorder.snapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = nullptr;
  const TraceEvent* inner = nullptr;
  for (const auto& event : events) {
    if (std::string(event.name) == "outer") outer = &event;
    if (std::string(event.name) == "inner") inner = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // Same thread, and the inner interval nests inside the outer one.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_LE(outer->ts_us, inner->ts_us);
  EXPECT_GE(outer->ts_us + outer->dur_us, inner->ts_us + inner->dur_us);
  EXPECT_EQ(inner->args_json, "{\"layer\":2,\"note\":\"deep\"}");
  recorder.clear();
}

TEST(Trace, ChromeTraceJsonShape) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  setTracingEnabled(true);
  {
    RAP_TRACE_SPAN("export_me", {{"k", 3.5}});
  }
  setTracingEnabled(false);

  const std::string json = recorder.renderChromeTrace();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"export_me\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":3.5}"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  recorder.clear();
}

TEST(Trace, FlowEventsRenderWithSharedIdAndEndBinding) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  setTracingEnabled(true);
  {
    RAP_TRACE_SPAN("producer_side");
    traceFlow('s', "flow/x", 42, {{"epoch", 7}});
  }
  {
    RAP_TRACE_SPAN("consumer_side");
    traceFlow('f', "flow/x", 42);
  }
  setTracingEnabled(false);

  const std::string json = recorder.renderChromeTrace();
  // Both points share (name, id), which is what chains them into one
  // Perfetto arrow.
  EXPECT_NE(json.find("\"name\":\"flow/x\",\"cat\":\"rap\",\"ph\":\"s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"flow/x\",\"cat\":\"rap\",\"ph\":\"f\""),
            std::string::npos);
  // The terminating point binds to its enclosing slice.
  const std::size_t f_pos = json.find("\"ph\":\"f\"");
  ASSERT_NE(f_pos, std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\"", f_pos), std::string::npos);
  // Flow points carry the id; spans do not.
  EXPECT_NE(json.find("\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"epoch\":7}"), std::string::npos);
  recorder.clear();
}

TEST(Trace, DisabledFlowRecordsNothing) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  setTracingEnabled(false);
  traceFlow('s', "flow/none", 1);
  EXPECT_EQ(recorder.eventCount(), 0u);
}

TEST(Trace, SpansFromManyThreadsAllRecorded) {
  TraceRecorder& recorder = defaultTraceRecorder();
  recorder.clear();
  setTracingEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        RAP_TRACE_SPAN("worker_span", {{"i", i}});
      }
    });
  }
  for (auto& t : threads) t.join();
  setTracingEnabled(false);
  EXPECT_EQ(recorder.eventCount(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  recorder.clear();
}

// --------------------------------------------------------- structured log

class CaptureSink final : public util::LogSink {
 public:
  void write(const util::LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records.push_back(record);
  }
  std::mutex mutex_;
  std::vector<util::LogRecord> records;
};

TEST(StructuredLog, SinkReceivesMessageAndFields) {
  CaptureSink sink;
  util::setLogSink(&sink);
  RAP_LOG_KV(Info, {"layer", 3}, {"method", "rapminer"}) << "layer done";
  util::setLogSink(nullptr);

  ASSERT_EQ(sink.records.size(), 1u);
  const util::LogRecord& record = sink.records[0];
  EXPECT_EQ(record.level, util::LogLevel::kInfo);
  EXPECT_EQ(record.message, "layer done");
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0].key, "layer");
  EXPECT_EQ(record.fields[0].value, "3");
  EXPECT_FALSE(record.fields[0].quoted);
  EXPECT_EQ(record.fields[1].key, "method");
  EXPECT_EQ(record.fields[1].value, "rapminer");
  EXPECT_TRUE(record.fields[1].quoted);
  EXPECT_STREQ(record.file, "obs_test.cpp");
}

TEST(StructuredLog, JsonLineFormat) {
  util::LogRecord record;
  record.level = util::LogLevel::kWarn;
  record.file = "monitor.cpp";
  record.line = 98;
  record.message = "alarm \"raised\"";
  record.fields.emplace_back("alarms", 3);
  record.fields.emplace_back("state", "raised");
  record.fields.emplace_back("drop", 0.25);

  const std::string line = JsonLineLogSink::formatRecord(record);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"src\":\"monitor.cpp:98\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"alarm \\\"raised\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"alarms\":3"), std::string::npos);
  EXPECT_NE(line.find("\"state\":\"raised\""), std::string::npos);
  EXPECT_NE(line.find("\"drop\":0.25"), std::string::npos);
}

TEST(StructuredLog, BelowLevelStatementsNeverReachSink) {
  CaptureSink sink;
  util::setLogSink(&sink);
  const util::LogLevel before = util::logLevel();
  util::setLogLevel(util::LogLevel::kWarn);
  RAP_LOG(Info) << "filtered out";
  RAP_LOG_KV(Debug, {"x", 1}) << "also filtered";
  util::setLogLevel(before);
  util::setLogSink(nullptr);
  EXPECT_TRUE(sink.records.empty());
}

}  // namespace
}  // namespace rap::obs
