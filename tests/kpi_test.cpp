#include <gtest/gtest.h>

#include "core/rapminer.h"
#include "dataset/cuboid.h"
#include "dataset/kpi.h"
#include "detect/detector.h"
#include "gen/rapmd.h"

namespace rap::dataset {
namespace {

/// Requests/successes table over Schema::tiny(): every leaf serves 100
/// requests with 98 successes, except leaves under `broken`, which keep
/// their traffic but succeed only `success_rate` of the time.  Forecast
/// columns carry the healthy values.
MultiKpiTable makeTable(const std::string& broken_text, double success_rate) {
  const Schema schema = Schema::tiny();
  const auto broken = AttributeCombination::parse(schema, broken_text).value();
  MultiKpiTable table(schema, {"requests", "successes"});
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = leafFromIndex(schema, i);
    MultiKpiRow row;
    row.ac = leaf;
    const double requests = 100.0;
    const double healthy_successes = 98.0;
    const double successes = broken.matchesLeaf(leaf)
                                 ? requests * success_rate
                                 : healthy_successes;
    row.v = {requests, successes};
    row.f = {requests, healthy_successes};
    table.addRow(std::move(row));
  }
  return table;
}

TEST(MultiKpiTable, KpiNameLookup) {
  const auto table = makeTable("(a1, *, *, *)", 0.5);
  EXPECT_EQ(table.kpiCount(), 2);
  EXPECT_EQ(table.kpiId("successes").value(), 1);
  EXPECT_EQ(table.kpiName(0), "requests");
  EXPECT_FALSE(table.kpiId("nope").isOk());
}

TEST(MultiKpiTable, FundamentalAggregationIsAdditive) {
  // Fig. 4: the coarse combination's fundamental KPI equals the sum of
  // its leaves'.
  const auto table = makeTable("(a1, *, *, *)", 0.5);
  const Schema& schema = table.schema();
  const auto coarse = AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  const auto [v, f] = table.aggregateFundamental(coarse, 0);
  // a1 has 8 descendant leaves of 100 requests each.
  EXPECT_DOUBLE_EQ(v, 800.0);
  EXPECT_DOUBLE_EQ(f, 800.0);

  // Root aggregates everything.
  const AttributeCombination root(schema.attributeCount());
  EXPECT_DOUBLE_EQ(table.aggregateFundamental(root, 0).first, 2400.0);
}

TEST(MultiKpiTable, DerivedAppliedAfterAggregation) {
  // The derived value at a coarse combination is g(sum) — NOT the mean
  // of the leaves' ratios.  With uniform leaves both coincide; make one
  // leaf dominate to tell them apart.
  const Schema schema = Schema::tiny();
  MultiKpiTable table(schema, {"requests", "successes"});
  MultiKpiRow big;
  big.ac = leafFromIndex(schema, 0);
  big.v = {900.0, 450.0};  // ratio 0.5, dominant volume
  big.f = big.v;
  table.addRow(big);
  MultiKpiRow small;
  small.ac = leafFromIndex(schema, 1);
  small.v = {100.0, 100.0};  // ratio 1.0
  small.f = small.v;
  table.addRow(small);

  const auto ratio = ratioKpi("success_ratio", 1, 0);
  const AttributeCombination root(schema.attributeCount());
  const auto [v, f] = table.deriveAt(root, ratio);
  EXPECT_NEAR(v, 550.0 / 1000.0, 1e-12);  // volume-weighted, not 0.75
  EXPECT_NEAR(f, 0.55, 1e-12);
}

TEST(RatioKpi, GuardsZeroDenominator) {
  const auto ratio = ratioKpi("r", 1, 0);
  EXPECT_DOUBLE_EQ(ratio.fn({0.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(ratio.fn({10.0, 5.0}), 0.5);
}

TEST(MultiKpiTable, FundamentalLeafTableProjection) {
  const auto table = makeTable("(a1, *, *, *)", 0.5);
  const auto leaf_table = table.fundamentalLeafTable(1);
  EXPECT_EQ(leaf_table.size(), table.size());
  // Verdicts unset by projection.
  EXPECT_EQ(leaf_table.anomalousCount(), 0u);
}

TEST(MultiKpiTable, DerivedLocalizationFindsRatioDrop) {
  // The paper's §IV-B claim: RAPMiner needs only leaf verdicts, so a
  // derived KPI localizes exactly like a fundamental one.  Traffic is
  // unchanged everywhere (a fundamental-KPI view sees nothing); only
  // the success ratio drops under the broken pattern.
  const auto table = makeTable("(*, b2, *, d1)", 0.4);
  const Schema& schema = table.schema();

  // Fundamental view: no deviation at all.
  auto requests_table = table.fundamentalLeafTable(0);
  const detect::RelativeDeviationDetector detector(0.1);
  EXPECT_EQ(detector.run(requests_table), 0u);

  // Derived view: the ratio drop is visible and localizable.
  auto ratio_table =
      table.derivedLeafTable(ratioKpi("success_ratio", 1, 0));
  EXPECT_GT(detector.run(ratio_table), 0u);
  const auto result = core::RapMiner().localize(ratio_table, 3);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac.toString(schema), "(*, b2, *, d1)");
}

TEST(MultiKpiRapmd, DerivedViewLocalizesGeneratedFailures) {
  // The generator's multi-KPI mode: traffic normal, success ratio
  // broken; the derived pipeline must recover the same injected RAPs
  // the scalar RAPMD carries.
  gen::RapmdConfig config;
  config.num_cases = 4;
  gen::RapmdGenerator generator(Schema::cdn(), config, 2024);
  int hits = 0;
  int total = 0;
  for (std::int32_t i = 0; i < 4; ++i) {
    auto c = generator.generateMultiKpiCase(i);
    // Fundamental view is silent.
    auto requests_view = c.table.fundamentalLeafTable(0);
    const detect::RelativeDeviationDetector detector(0.095);
    EXPECT_EQ(detector.run(requests_view), 0u);
    // Derived view exposes the failure.
    auto ratio_view =
        c.table.derivedLeafTable(ratioKpi("success_ratio", 1, 0));
    EXPECT_GT(detector.run(ratio_view), 0u);
    const auto result = core::RapMiner().localize(ratio_view, 5);
    for (const auto& t : c.truth) {
      ++total;
      for (const auto& p : result.patterns) {
        if (p.ac == t) {
          ++hits;
          break;
        }
      }
    }
  }
  EXPECT_GT(hits * 2, total) << "derived-KPI pipeline lost most RAPs";
}

TEST(MultiKpiTable, RowValidation) {
  const Schema schema = Schema::tiny();
  MultiKpiTable table(schema, {"a", "b"});
  MultiKpiRow bad;
  bad.ac = leafFromIndex(schema, 0);
  bad.v = {1.0};  // wrong arity
  bad.f = {1.0, 2.0};
  EXPECT_DEATH(table.addRow(bad), "entries");
}

}  // namespace
}  // namespace rap::dataset
