// End-to-end pipeline tests: generator -> (detector) -> localizer ->
// metrics, on both dataset styles.
#include <gtest/gtest.h>

#include "baselines/adtributor.h"
#include "baselines/fp_rap.h"
#include "baselines/squeeze.h"
#include "core/rapminer.h"
#include "detect/detector.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "gen/rapmd.h"
#include "gen/squeeze_gen.h"

namespace rap {
namespace {

using dataset::AttributeCombination;

gen::RapmdConfig smallRapmdConfig() {
  gen::RapmdConfig config;
  config.num_cases = 8;
  config.background.sparsity = 0.1;
  return config;
}

TEST(IntegrationRapmd, RapMinerRecoversInjectedRapsOnCdnSchema) {
  gen::RapmdGenerator generator(dataset::Schema::cdn(), smallRapmdConfig(),
                                /*seed=*/42);
  const auto cases = generator.generate();
  ASSERT_EQ(cases.size(), 8u);

  eval::RecallAtKAccumulator rc3(3);
  for (const auto& c : cases) {
    const auto result = core::RapMiner().localize(c.table, 5);
    rc3.add(result.patterns, c.truth);
  }
  // The paper reports RC@3 above 0.8 for RAPMiner on RAPMD.
  EXPECT_GT(rc3.value(), 0.7) << "RC@3 collapsed on the RAPMD pipeline";
}

TEST(IntegrationRapmd, DetectorRecoversInjectedVerdicts) {
  gen::RapmdGenerator generator(dataset::Schema::cdn(), smallRapmdConfig(),
                                /*seed=*/7);
  auto c = generator.generateCase(0);

  // Remember injected verdicts, wipe them, re-detect from (v, f) only.
  std::vector<bool> injected;
  for (const auto& row : c.table.rows()) injected.push_back(row.anomalous);
  for (dataset::RowId id = 0; id < c.table.size(); ++id) {
    c.table.setAnomalous(id, false);
  }
  const detect::RelativeDeviationDetector detector(/*threshold=*/0.095);
  detector.run(c.table);

  // The RAPMD deviation ranges ([0.1,0.9] vs [-0.02,0.09]) are separable
  // at 0.095, so detection must recover the injection labels exactly.
  for (dataset::RowId id = 0; id < c.table.size(); ++id) {
    EXPECT_EQ(c.table.row(id).anomalous, injected[id]) << "row " << id;
  }
}

TEST(IntegrationSqueezeDataset, RapMinerF1HighOnGroup11) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = 10;
  gen::SqueezeGenerator generator(config, /*seed=*/11);
  const auto group = generator.generateGroup(1, 1);

  eval::F1Accumulator f1;
  for (const auto& c : group.cases) {
    const auto result = core::RapMiner().localize(
        c.table, static_cast<std::int32_t>(c.truth.size()));
    f1.add(eval::patternsToAcs(result.patterns), c.truth);
  }
  EXPECT_GT(f1.f1(), 0.9) << "F1 on the (1,1) group should be near-perfect";
}

TEST(IntegrationSqueezeDataset, SqueezeBaselineWorksUnderItsAssumptions) {
  gen::SqueezeGenConfig config;
  config.cases_per_group = 6;
  gen::SqueezeGenerator generator(config, /*seed=*/23);
  const auto group = generator.generateGroup(1, 2);

  eval::F1Accumulator f1;
  for (const auto& c : group.cases) {
    const auto patterns = baselines::squeezeLocalize(
        c.table, {}, static_cast<std::int32_t>(c.truth.size()));
    f1.add(eval::patternsToAcs(patterns), c.truth);
  }
  // Its own dataset honors both assumptions, so Squeeze should do well.
  EXPECT_GT(f1.f1(), 0.6);
}

TEST(IntegrationRunner, StandardLocalizersProduceRankedResults) {
  gen::RapmdGenerator generator(dataset::Schema::cdn(), smallRapmdConfig(),
                                /*seed=*/99);
  const auto cases = generator.generate();

  for (const auto& localizer : eval::standardLocalizers()) {
    const auto runs = eval::runLocalizer(localizer, cases, {.k = 5});
    ASSERT_EQ(runs.size(), cases.size()) << localizer.name;
    for (const auto& run : runs) {
      // Ranked output: scores non-increasing.
      for (std::size_t i = 1; i < run.predictions.size(); ++i) {
        EXPECT_LE(run.predictions[i].score, run.predictions[i - 1].score)
            << localizer.name << " returned unsorted results";
      }
      EXPECT_LE(run.predictions.size(), 5u) << localizer.name;
    }
  }
}

}  // namespace
}  // namespace rap
