#include <gtest/gtest.h>

#include <algorithm>

#include "core/rapminer.h"
#include "core/report.h"
#include "forecast/forecaster.h"
#include "forecast/pipeline.h"
#include "gen/timeseries.h"

namespace rap::gen {
namespace {

using dataset::Schema;

TimeSeriesConfig smallConfig() {
  TimeSeriesConfig config;
  config.history_days = 3;
  config.background.minutes_per_day = 96;  // compressed day for speed
  config.background.sparsity = 0.1;
  return config;
}

TEST(TimeSeries, SeriesHaveFullHistoryAndCurrent) {
  TimeSeriesGenerator generator(Schema::synthetic({6, 4, 4}), smallConfig(),
                                11);
  const auto c = generator.generateCase(0);
  ASSERT_FALSE(c.series.empty());
  for (const auto& s : c.series) {
    EXPECT_EQ(s.history.size(), 3u * 96u);
    EXPECT_GE(s.current, 0.0);
  }
  EXPECT_GE(c.failure_minute, 3 * 96);
}

TEST(TimeSeries, DeterministicPerIndex) {
  TimeSeriesGenerator a(Schema::synthetic({6, 4, 4}), smallConfig(), 42);
  TimeSeriesGenerator b(Schema::synthetic({6, 4, 4}), smallConfig(), 42);
  const auto ca = a.generateCase(3);
  const auto cb = b.generateCase(3);
  EXPECT_EQ(ca.truth, cb.truth);
  EXPECT_EQ(ca.failure_minute, cb.failure_minute);
  ASSERT_EQ(ca.series.size(), cb.series.size());
  for (std::size_t i = 0; i < ca.series.size(); ++i) {
    EXPECT_EQ(ca.series[i].history, cb.series[i].history);
    EXPECT_DOUBLE_EQ(ca.series[i].current, cb.series[i].current);
  }
}

TEST(TimeSeries, InjectedLeavesDropBelowHistoryLevel) {
  TimeSeriesGenerator generator(Schema::synthetic({6, 4, 4}), smallConfig(),
                                7);
  const auto c = generator.generateCase(1);
  for (const auto& s : c.series) {
    const bool hit = std::any_of(
        c.truth.begin(), c.truth.end(),
        [&s](const auto& rap) { return rap.matchesLeaf(s.leaf); });
    if (!hit) continue;
    // The drop is 30-90% against the same-phase expectation; compare to
    // the same minute of the previous day.
    const double yesterday =
        s.history[s.history.size() - 96];  // one compressed day back
    EXPECT_LT(s.current, yesterday)
        << s.leaf.debugString() << " should have dropped";
  }
}

TEST(TimeSeries, EndToEndForecastDetectLocalize) {
  // The headline path: raw history in, RAPs out.
  auto config = smallConfig();
  config.min_raps = 1;
  config.max_raps = 1;
  config.min_rap_dim = 1;
  config.max_rap_dim = 2;
  config.drop_lo = 0.5;
  config.drop_hi = 0.9;
  TimeSeriesGenerator generator(Schema::synthetic({6, 4, 4}), config, 99);

  int hits = 0;
  const int cases = 5;
  for (int i = 0; i < cases; ++i) {
    const auto c = generator.generateCase(i);
    forecast::PipelineConfig pipeline;
    pipeline.detect_threshold = 0.3;
    const auto table = forecast::buildDetectedTable(
        generator.schema(), c.series,
        forecast::HoltWintersForecaster(96), pipeline);
    const auto result = core::RapMiner().localize(table, 3);
    const auto acs = [&result] {
      std::vector<dataset::AttributeCombination> out;
      for (const auto& p : result.patterns) out.push_back(p.ac);
      return out;
    }();
    if (std::find(acs.begin(), acs.end(), c.truth[0]) != acs.end()) ++hits;
  }
  EXPECT_GE(hits, 4) << "forecast+localize pipeline missed too many cases";
}

TEST(Report, RendersSectionsAndPatterns) {
  TimeSeriesGenerator generator(Schema::synthetic({6, 4, 4}), smallConfig(),
                                5);
  const auto c = generator.generateCase(0);
  forecast::PipelineConfig pipeline;
  pipeline.detect_threshold = 0.2;
  const auto table = forecast::buildDetectedTable(
      generator.schema(), c.series, forecast::HoltWintersForecaster(96),
      pipeline);
  const auto result = core::RapMiner().localize(table, 3);

  const std::string report = core::renderReport(generator.schema(), result);
  EXPECT_NE(report.find("Root anomaly patterns"), std::string::npos);
  EXPECT_NE(report.find("Classification power"), std::string::npos);
  EXPECT_NE(report.find("Search effort"), std::string::npos);

  core::ReportOptions bare;
  bare.include_stats = false;
  bare.include_powers = false;
  const std::string minimal =
      core::renderReport(generator.schema(), result, bare);
  EXPECT_EQ(minimal.find("Search effort"), std::string::npos);
  EXPECT_EQ(minimal.find("Classification power"), std::string::npos);
}

TEST(Report, EmptyResultSaysNoneFound) {
  const Schema schema = Schema::tiny();
  const core::LocalizationResult empty;
  const std::string report = core::renderReport(schema, empty);
  EXPECT_NE(report.find("none found"), std::string::npos);
}

}  // namespace
}  // namespace rap::gen
