#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include <cmath>

#include <fstream>
#include <iterator>

#include "core/types.h"
#include "dataset/cuboid.h"
#include "io/checkpoint.h"
#include "io/csv.h"
#include "io/dataset_io.h"
#include "io/json.h"

namespace rap::io {
namespace {

using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("rap_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

// ------------------------------------------------------------------- CSV

TEST(Csv, ParsesPlainRows) {
  const auto rows = parseCsv("a,b,c\n1,2,3\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(Csv, HandlesQuotedFields) {
  const auto rows =
      parseCsv("\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "a,b");
  EXPECT_EQ(rows[0][1], "say \"hi\"");
  EXPECT_EQ(rows[0][2], "line\nbreak");
}

TEST(Csv, HandlesCrLfAndMissingTrailingNewline) {
  const auto rows = parseCsv("a,b\r\nc,d").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto rows = parseCsv("a,,c\n,,\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"", "", ""}));
}

TEST(Csv, EmptyDocument) {
  EXPECT_TRUE(parseCsv("").value().empty());
  EXPECT_TRUE(parseCsv("\n\n").value().empty());
}

TEST(Csv, RejectsMalformedQuoting) {
  EXPECT_FALSE(parseCsv("ab\"c,d\n").isOk());
  EXPECT_FALSE(parseCsv("\"unterminated\n").isOk());
}

TEST(Csv, WriteQuotesOnlyWhenNeeded) {
  const std::string out =
      writeCsv({{"plain", "with,comma", "with\"quote", "with\nnewline"}});
  EXPECT_EQ(out,
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Csv, RoundTripArbitraryContent) {
  const std::vector<CsvRow> rows{{"a", "b,c", "d\"e"}, {"", "x\ny", "z"}};
  const auto parsed = parseCsv(writeCsv(rows)).value();
  EXPECT_EQ(parsed, rows);
}

TEST_F(TempDir, CsvFileRoundTrip) {
  const std::vector<CsvRow> rows{{"h1", "h2"}, {"1", "2"}};
  ASSERT_TRUE(writeCsvFile(path("t.csv"), rows).isOk());
  EXPECT_EQ(readCsvFile(path("t.csv")).value(), rows);
}

TEST(CsvFile, MissingFileIsNotFound) {
  const auto result = readCsvFile("/nonexistent/path/file.csv");
  ASSERT_FALSE(result.isOk());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

// ------------------------------------------------------- CSV (streaming)

/// Feeds `text` to a CsvStreamParser in chunks of `chunk_size` bytes.
util::Result<std::vector<CsvRow>> streamInChunks(const std::string& text,
                                                 std::size_t chunk_size) {
  std::vector<CsvRow> rows;
  const CsvRowCallback collect = [&rows](CsvRow&& row) {
    rows.push_back(std::move(row));
  };
  CsvStreamParser parser;
  for (std::size_t i = 0; i < text.size(); i += chunk_size) {
    const auto status =
        parser.feed(std::string_view(text).substr(i, chunk_size), collect);
    if (!status.isOk()) return status;
  }
  const auto status = parser.finish(collect);
  if (!status.isOk()) return status;
  return rows;
}

TEST(CsvStream, EveryChunkSizeMatchesBatchParse) {
  // Escaped quotes, embedded commas and newlines, CRLF, no trailing
  // newline — every chunk size must cut through each of them somewhere.
  const std::string text =
      "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\r\n"
      "plain,,fields\r\n"
      "last,\"row \"\"quoted\"\"\"";
  const auto batch = parseCsv(text).value();
  for (std::size_t chunk = 1; chunk <= text.size(); ++chunk) {
    EXPECT_EQ(streamInChunks(text, chunk).value(), batch)
        << "chunk size " << chunk;
  }
}

TEST(CsvStream, RowsArriveAsTheyComplete) {
  CsvStreamParser parser;
  std::vector<CsvRow> rows;
  const CsvRowCallback collect = [&rows](CsvRow&& row) {
    rows.push_back(std::move(row));
  };
  ASSERT_TRUE(parser.feed("a,b\nc,", collect).isOk());
  EXPECT_EQ(rows.size(), 1u);  // the second row is still open
  ASSERT_TRUE(parser.feed("d\n", collect).isOk());
  EXPECT_EQ(rows.size(), 2u);
  ASSERT_TRUE(parser.finish(collect).isOk());
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvStream, ErrorsCarryGlobalOffsets) {
  CsvStreamParser parser;
  const CsvRowCallback ignore = [](CsvRow&&) {};
  ASSERT_TRUE(parser.feed("x,y\na", ignore).isOk());
  const auto status = parser.feed("b\"c", ignore);
  ASSERT_FALSE(status.isOk());
  // Offset 6 in the overall stream, not offset 1 in the second chunk —
  // with the 1-based row, and the identical message the batch parser
  // produces.
  EXPECT_EQ(status.message(),
            "quote inside unquoted field at row 2 near offset 6");
  EXPECT_EQ(parseCsv("x,y\nab\"c").status().message(), status.message());
}

TEST(CsvStream, UnterminatedQuoteFailsAtFinish) {
  CsvStreamParser parser;
  const CsvRowCallback ignore = [](CsvRow&&) {};
  ASSERT_TRUE(parser.feed("\"open", ignore).isOk());
  const auto status = parser.finish(ignore);
  ASSERT_FALSE(status.isOk());
  EXPECT_EQ(status.message(), "unterminated quoted field");
}

TEST(CsvStream, FinishResetsForReuse) {
  CsvStreamParser parser;
  std::vector<CsvRow> rows;
  const CsvRowCallback collect = [&rows](CsvRow&& row) {
    rows.push_back(std::move(row));
  };
  ASSERT_TRUE(parser.feed("a,b", collect).isOk());
  ASSERT_TRUE(parser.finish(collect).isOk());
  ASSERT_TRUE(parser.feed("c,d", collect).isOk());
  ASSERT_TRUE(parser.finish(collect).isOk());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST_F(TempDir, StreamCsvFileDeliversEveryRow) {
  const std::vector<CsvRow> rows{
      {"h1", "h2"}, {"quoted,comma", "line\nbreak"}, {"1", "2"}};
  ASSERT_TRUE(writeCsvFile(path("s.csv"), rows).isOk());
  std::vector<CsvRow> streamed;
  ASSERT_TRUE(streamCsvFile(path("s.csv"), [&streamed](CsvRow&& row) {
                streamed.push_back(std::move(row));
              }).isOk());
  EXPECT_EQ(streamed, rows);
}

TEST(CsvStreamFile, MissingFileIsNotFound) {
  const auto status = streamCsvFile("/nonexistent/file.csv", [](CsvRow&&) {});
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

// -------------------------------------------------- CSV input hardening

TEST(CsvHardening, EmbeddedNulIsRejectedWithRowContext) {
  CsvStreamParser parser;
  const CsvRowCallback ignore = [](CsvRow&&) {};
  const std::string input = std::string("ok,row\nbad") + '\0' + "field";
  const auto status = parser.feed(input, ignore);
  ASSERT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "embedded NUL byte at row 2 near offset 10");
}

TEST(CsvHardening, OverLongFieldIsRejectedNotBuffered) {
  CsvStreamParser parser;
  const CsvRowCallback ignore = [](CsvRow&&) {};
  // Stay a hair under the limit, then push one byte past it in a later
  // chunk: the limit spans chunk boundaries.
  const std::string almost(CsvStreamParser::kMaxFieldBytes, 'x');
  ASSERT_TRUE(parser.feed(almost, ignore).isOk());
  const auto status = parser.feed("x", ignore);
  ASSERT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("over-long field at row 1"),
            std::string::npos);
}

TEST(CsvHardening, OverLongQuotedFieldIsRejected) {
  CsvStreamParser parser;
  const CsvRowCallback ignore = [](CsvRow&&) {};
  ASSERT_TRUE(parser.feed("\"", ignore).isOk());
  const std::string big(CsvStreamParser::kMaxFieldBytes + 1, 'y');
  const auto status = parser.feed(big, ignore);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

TEST(CsvHardening, FieldAtTheLimitStillParses) {
  CsvStreamParser parser;
  std::vector<CsvRow> rows;
  const CsvRowCallback collect = [&rows](CsvRow&& row) {
    rows.push_back(std::move(row));
  };
  const std::string max_field(CsvStreamParser::kMaxFieldBytes, 'z');
  ASSERT_TRUE(parser.feed(max_field + ",b\n", collect).isOk());
  ASSERT_TRUE(parser.finish(collect).isOk());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].size(), CsvStreamParser::kMaxFieldBytes);
}

// -------------------------------------------------------------- LeafTable

LeafTable sampleTable() {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    table.addRow(dataset::leafFromIndex(schema, i),
                 static_cast<double>(i) + 0.5, static_cast<double>(i) * 2.0,
                 i % 3 == 0);
  }
  return table;
}

TEST_F(TempDir, LeafTableRoundTrip) {
  const LeafTable original = sampleTable();
  ASSERT_TRUE(saveLeafTable(original, path("table.csv")).isOk());

  const auto loaded =
      loadLeafTable(original.schema(), path("table.csv")).value();
  ASSERT_EQ(loaded.size(), original.size());
  for (dataset::RowId id = 0; id < original.size(); ++id) {
    EXPECT_EQ(loaded.row(id).ac, original.row(id).ac);
    EXPECT_DOUBLE_EQ(loaded.row(id).v, original.row(id).v);
    EXPECT_DOUBLE_EQ(loaded.row(id).f, original.row(id).f);
    EXPECT_EQ(loaded.row(id).anomalous, original.row(id).anomalous);
  }
}

TEST_F(TempDir, LeafTableWithoutLabelColumnLoadsAsNormal) {
  // Squeeze-repo layout: attr...,real,predict only.
  const std::vector<CsvRow> rows{{"A", "B", "C", "D", "real", "predict"},
                                 {"a1", "b1", "c1", "d1", "10", "12"}};
  ASSERT_TRUE(writeCsvFile(path("nolabel.csv"), rows).isOk());
  const auto loaded = loadLeafTable(Schema::tiny(), path("nolabel.csv")).value();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_FALSE(loaded.row(0).anomalous);
  EXPECT_DOUBLE_EQ(loaded.row(0).v, 10.0);
}

TEST_F(TempDir, LeafTableRejectsUnknownElement) {
  const std::vector<CsvRow> rows{{"A", "B", "C", "D", "real", "predict"},
                                 {"zz", "b1", "c1", "d1", "1", "2"}};
  ASSERT_TRUE(writeCsvFile(path("bad.csv"), rows).isOk());
  EXPECT_FALSE(loadLeafTable(Schema::tiny(), path("bad.csv")).isOk());
}

TEST_F(TempDir, LeafTableRejectsShortRows) {
  const std::vector<CsvRow> rows{{"A", "B", "C", "D", "real", "predict"},
                                 {"a1", "b1", "c1", "d1", "1"}};
  ASSERT_TRUE(writeCsvFile(path("short.csv"), rows).isOk());
  EXPECT_FALSE(loadLeafTable(Schema::tiny(), path("short.csv")).isOk());
}

TEST_F(TempDir, LeafTableRejectsNonNumericKpi) {
  const std::vector<CsvRow> rows{{"A", "B", "C", "D", "real", "predict"},
                                 {"a1", "b1", "c1", "d1", "x", "2"}};
  ASSERT_TRUE(writeCsvFile(path("nan.csv"), rows).isOk());
  EXPECT_FALSE(loadLeafTable(Schema::tiny(), path("nan.csv")).isOk());
}

// ----------------------------------------------------------------- Schema

TEST_F(TempDir, SchemaRoundTrip) {
  const Schema original = Schema::cdn();
  ASSERT_TRUE(saveSchema(original, path("schema.csv")).isOk());
  const auto loaded = loadSchema(path("schema.csv")).value();
  ASSERT_EQ(loaded.attributeCount(), original.attributeCount());
  for (dataset::AttrId a = 0; a < original.attributeCount(); ++a) {
    EXPECT_EQ(loaded.attribute(a).name(), original.attribute(a).name());
    EXPECT_EQ(loaded.cardinality(a), original.cardinality(a));
  }
}

TEST_F(TempDir, SchemaRejectsRowsWithoutElements) {
  ASSERT_TRUE(writeCsvFile(path("s.csv"), {{"OnlyName"}}).isOk());
  EXPECT_FALSE(loadSchema(path("s.csv")).isOk());
}

// ----------------------------------------------------------- GroundTruth

TEST_F(TempDir, GroundTruthRoundTrip) {
  const Schema schema = Schema::tiny();
  std::vector<GroundTruthEntry> entries;
  entries.push_back(
      {"case-1",
       {AttributeCombination::parse(schema, "(a1, *, *, *)").value(),
        AttributeCombination::parse(schema, "(*, b2, c1, *)").value()}});
  entries.push_back({"case-2", {}});

  ASSERT_TRUE(saveGroundTruth(schema, entries, path("gt.csv")).isOk());
  const auto loaded = loadGroundTruth(schema, path("gt.csv")).value();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].case_id, "case-1");
  EXPECT_EQ(loaded[0].raps, entries[0].raps);
  EXPECT_TRUE(loaded[1].raps.empty());
}

TEST_F(TempDir, DatasetDirectoryRoundTrip) {
  const Schema schema = Schema::tiny();
  // Two cases with distinct tables and truths.
  std::vector<GroundTruthEntry> truth;
  for (int i = 0; i < 2; ++i) {
    LeafTable table(schema);
    for (std::uint64_t leaf = 0; leaf < schema.leafCount(); ++leaf) {
      table.addRow(dataset::leafFromIndex(schema, leaf),
                   static_cast<double>(leaf + i), 100.0, leaf % (2 + i) == 0);
    }
    const std::string id = "case" + std::to_string(i);
    ASSERT_TRUE(saveLeafTable(table, path(id + ".csv")).isOk());
    truth.push_back(
        {id, {AttributeCombination::parse(schema, "(a1, *, *, *)").value()}});
  }
  ASSERT_TRUE(saveSchema(schema, path("schema.csv")).isOk());
  ASSERT_TRUE(
      saveGroundTruth(schema, truth, path("injection_info.csv")).isOk());

  const auto loaded = loadDatasetDirectory(path(""));
  ASSERT_TRUE(loaded.isOk()) << loaded.status().toString();
  ASSERT_EQ(loaded->cases.size(), 2u);
  EXPECT_EQ(loaded->cases[0].id, "case0");
  EXPECT_EQ(loaded->cases[0].table.size(), schema.leafCount());
  EXPECT_EQ(loaded->cases[1].truth, truth[1].raps);
  EXPECT_EQ(loaded->schema.attributeCount(), schema.attributeCount());
}

TEST_F(TempDir, LeafTableRejectsNonFiniteKpiWithRowContext) {
  const std::vector<CsvRow> rows{{"A", "B", "C", "D", "real", "predict"},
                                 {"a1", "b1", "c1", "d1", "1", "2"},
                                 {"a2", "b1", "c1", "d1", "nan", "2"}};
  ASSERT_TRUE(writeCsvFile(path("nonfinite.csv"), rows).isOk());
  const auto loaded = loadLeafTable(Schema::tiny(), path("nonfinite.csv"));
  ASSERT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  // The offending row (1-based, counting the header) is named.
  EXPECT_NE(loaded.status().message().find(":3: non-finite KPI value"),
            std::string::npos);

  const std::vector<CsvRow> inf_rows{{"A", "B", "C", "D", "real", "predict"},
                                     {"a1", "b1", "c1", "d1", "1", "inf"}};
  ASSERT_TRUE(writeCsvFile(path("inf.csv"), inf_rows).isOk());
  EXPECT_FALSE(loadLeafTable(Schema::tiny(), path("inf.csv")).isOk());
}

TEST(DatasetDirectory, MissingDirectoryIsError) {
  EXPECT_FALSE(loadDatasetDirectory("/nonexistent/rap_ds").isOk());
}

// ------------------------------------------------------------ Checkpoint

StreamCheckpoint sampleCheckpoint() {
  const Schema schema = Schema::tiny();
  StreamCheckpoint chk;
  chk.shards = 2;
  chk.window_width = 60;
  chk.max_event_ts = 1234;
  chk.shard_sealed_up_to = {5, StreamCheckpoint::kNone};
  StreamCheckpoint::Fragment open;
  open.shard = 0;
  open.epoch = 6;
  open.rows.push_back(dataset::LeafRow{
      dataset::leafFromIndex(schema, 0), 0.1 + 0.2, 1e-307, true});
  chk.fragments.push_back(open);
  StreamCheckpoint::Fragment pending;
  pending.shard = -1;
  pending.epoch = 7;
  pending.rows.push_back(dataset::LeafRow{
      dataset::leafFromIndex(schema, 3), -42.5, 3.14159265358979, false});
  chk.fragments.push_back(pending);
  return chk;
}

TEST_F(TempDir, CheckpointRoundTripsBitExactly) {
  const StreamCheckpoint original = sampleCheckpoint();
  ASSERT_TRUE(saveStreamCheckpoint(original, path("chk")).isOk());
  const auto loaded = loadStreamCheckpoint(path("chk"));
  ASSERT_TRUE(loaded.isOk()) << loaded.status().message();
  const StreamCheckpoint& got = loaded.value();
  EXPECT_EQ(got.version, StreamCheckpoint::kVersion);
  EXPECT_EQ(got.shards, original.shards);
  EXPECT_EQ(got.window_width, original.window_width);
  EXPECT_EQ(got.max_event_ts, original.max_event_ts);
  EXPECT_EQ(got.shard_sealed_up_to, original.shard_sealed_up_to);
  ASSERT_EQ(got.fragments.size(), original.fragments.size());
  for (std::size_t i = 0; i < got.fragments.size(); ++i) {
    EXPECT_EQ(got.fragments[i].shard, original.fragments[i].shard);
    EXPECT_EQ(got.fragments[i].epoch, original.fragments[i].epoch);
    ASSERT_EQ(got.fragments[i].rows.size(), original.fragments[i].rows.size());
    for (std::size_t r = 0; r < got.fragments[i].rows.size(); ++r) {
      const auto& a = got.fragments[i].rows[r];
      const auto& b = original.fragments[i].rows[r];
      EXPECT_EQ(a.ac, b.ac);
      // Hex-float serialization: bit-exact, not merely close.
      EXPECT_EQ(a.v, b.v);
      EXPECT_EQ(a.f, b.f);
      EXPECT_EQ(a.anomalous, b.anomalous);
    }
  }
}

TEST_F(TempDir, CheckpointSaveLeavesNoTmpFileBehind) {
  ASSERT_TRUE(saveStreamCheckpoint(sampleCheckpoint(), path("chk")).isOk());
  EXPECT_TRUE(std::filesystem::exists(path("chk")));
  EXPECT_FALSE(std::filesystem::exists(path("chk") + ".tmp"));
}

TEST_F(TempDir, CheckpointRejectsUnknownVersion) {
  ASSERT_TRUE(saveStreamCheckpoint(sampleCheckpoint(), path("chk")).isOk());
  // Bump the version in place; the loader must refuse, not half-load.
  std::string text;
  {
    std::ifstream in(path("chk"));
    std::getline(in, text);
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    text = "RAPCHKPT 99\n" + rest;
  }
  {
    std::ofstream out(path("chk"), std::ios::trunc);
    out << text;
  }
  const auto loaded = loadStreamCheckpoint(path("chk"));
  ASSERT_FALSE(loaded.isOk());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("unsupported checkpoint version"),
            std::string::npos);
}

TEST_F(TempDir, CheckpointRejectsTruncation) {
  ASSERT_TRUE(saveStreamCheckpoint(sampleCheckpoint(), path("chk")).isOk());
  std::string text;
  {
    std::ifstream in(path("chk"));
    text.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  // Drop the 'end' trailer and the final row.
  text.resize(text.size() / 2);
  {
    std::ofstream out(path("chk"), std::ios::trunc);
    out << text;
  }
  EXPECT_FALSE(loadStreamCheckpoint(path("chk")).isOk());
}

TEST(Checkpoint, MissingFileIsNotFound) {
  EXPECT_EQ(loadStreamCheckpoint("/nonexistent/chk").status().code(),
            util::StatusCode::kNotFound);
}

// ------------------------------------------------------------------ JSON

TEST(Json, EscapesSpecialCharacters) {
  EXPECT_EQ(escapeJson("plain"), "plain");
  EXPECT_EQ(escapeJson("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escapeJson("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escapeJson("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(escapeJson(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterBuildsNestedDocument) {
  JsonWriter w;
  w.beginObject();
  w.key("n");
  w.value(std::int64_t{3});
  w.key("ok");
  w.value(true);
  w.key("ratio");
  w.value(0.5);
  w.key("items");
  w.beginArray();
  w.value("a");
  w.value("b");
  w.beginObject();
  w.key("nested");
  w.nullValue();
  w.endObject();
  w.endArray();
  w.endObject();
  EXPECT_EQ(std::move(w).str(),
            "{\"n\":3,\"ok\":true,\"ratio\":0.5,"
            "\"items\":[\"a\",\"b\",{\"nested\":null}]}");
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::nan(""));
  w.value(1.0 / 0.0);
  w.endArray();
  EXPECT_EQ(std::move(w).str(), "[null,null]");
}

TEST(Json, ResultSerialization) {
  const dataset::Schema schema = dataset::Schema::tiny();
  core::LocalizationResult result;
  core::ScoredPattern p;
  p.ac = AttributeCombination::parse(schema, "(a1, *, *, d1)").value();
  p.confidence = 0.95;
  p.layer = 2;
  p.score = 0.6717;
  result.patterns.push_back(p);
  result.stats.classification_power = {0.9, 0.0, 0.0, 0.4};
  result.stats.kept_attributes = {0, 3};
  result.stats.attributes_deleted = 2;
  result.stats.cuboids_visited = 3;
  result.stats.combinations_evaluated = 41;
  result.stats.early_stopped = true;

  const std::string json = resultToJson(schema, result);
  EXPECT_NE(json.find("\"pattern\":\"(a1, *, *, d1)\""), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":0.95"), std::string::npos);
  EXPECT_NE(json.find("\"kept_attributes\":[\"A\",\"D\"]"), std::string::npos);
  EXPECT_NE(json.find("\"early_stopped\":true"), std::string::npos);
  EXPECT_NE(json.find("\"attributes_deleted\":2"), std::string::npos);
}

TEST_F(TempDir, GroundTruthRejectsBadPattern) {
  ASSERT_TRUE(
      writeCsvFile(path("gt.csv"), {{"case_id", "raps"}, {"c", "(bogus,*,*,*)"}})
          .isOk());
  EXPECT_FALSE(loadGroundTruth(Schema::tiny(), path("gt.csv")).isOk());
}

}  // namespace
}  // namespace rap::io
