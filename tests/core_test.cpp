#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/classification_power.h"
#include "core/rapminer.h"
#include "core/search.h"
#include "dataset/cuboid.h"

namespace rap::core {
namespace {

using dataset::AttributeCombination;
using dataset::LeafTable;
using dataset::Schema;

/// Dense table over Schema::tiny() with everything under `broken`
/// (textual patterns) anomalous.
LeafTable makeTable(const std::vector<std::string>& broken_patterns) {
  const Schema schema = Schema::tiny();
  std::vector<AttributeCombination> broken;
  for (const auto& text : broken_patterns) {
    broken.push_back(AttributeCombination::parse(schema, text).value());
  }
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const bool anomalous =
        std::any_of(broken.begin(), broken.end(),
                    [&leaf](const AttributeCombination& ac) {
                      return ac.matchesLeaf(leaf);
                    });
    table.addRow(leaf, anomalous ? 10.0 : 100.0, 100.0, anomalous);
  }
  return table;
}

// ------------------------------------------------- Classification power

TEST(ClassificationPower, RapAttributeDominates) {
  // The paper's Fig. 6: (a1, *, *, *) broken -> attribute A classifies
  // the dataset; B, C, D do not.
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  const auto powers = classificationPowers(table);
  ASSERT_EQ(powers.size(), 4u);
  EXPECT_DOUBLE_EQ(powers[0], 1.0);  // perfect split
  EXPECT_NEAR(powers[1], 0.0, 1e-9);
  EXPECT_NEAR(powers[2], 0.0, 1e-9);
  EXPECT_NEAR(powers[3], 0.0, 1e-9);
}

TEST(ClassificationPower, TwoAttributeRap) {
  const LeafTable table = makeTable({"(a1, *, *, d1)"});
  const auto powers = classificationPowers(table);
  EXPECT_GT(powers[0], 0.05);
  EXPECT_GT(powers[3], 0.05);
  EXPECT_NEAR(powers[1], 0.0, 1e-9);
  EXPECT_NEAR(powers[2], 0.0, 1e-9);
}

TEST(ClassificationPower, ZeroWhenNoAnomalies) {
  const LeafTable table = makeTable({});
  for (const double power : classificationPowers(table)) {
    EXPECT_DOUBLE_EQ(power, 0.0);
  }
}

TEST(ClassificationPower, ZeroWhenAllAnomalous) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  // Re-label everything anomalous: no label uncertainty left.
  LeafTable all(table.schema());
  for (const auto& row : table.rows()) {
    all.addRow(row.ac, row.v, row.f, true);
  }
  for (const double power : classificationPowers(all)) {
    EXPECT_DOUBLE_EQ(power, 0.0);
  }
}

TEST(DeleteRedundantAttributes, Algorithm1KeepsAndSorts) {
  const LeafTable table = makeTable({"(a1, *, *, d1)"});
  std::vector<double> powers;
  const auto kept = deleteRedundantAttributes(table, 0.01, &powers);
  // A (3 elements) isolates anomalies better than D (2 elements), so the
  // CP-descending order is {A, D}.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_GT(powers[static_cast<std::size_t>(kept[0])],
            powers[static_cast<std::size_t>(kept[1])]);
  EXPECT_TRUE((kept[0] == 0 && kept[1] == 3) ||
              (kept[0] == 3 && kept[1] == 0));
}

TEST(DeleteRedundantAttributes, ThresholdIsExclusive) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  // CP of A is exactly 1.0; with t_cp = 1.0 even A is deleted
  // (Criteria 1 requires CP strictly greater than t_CP).
  EXPECT_TRUE(deleteRedundantAttributes(table, 1.0).empty());
  EXPECT_EQ(deleteRedundantAttributes(table, 0.99).size(), 1u);
}

TEST(DecreaseRatio, MatchesTableIV) {
  // Table IV lists the lower bound (2^k - 1) / 2^k; the exact ratio for
  // finite n must exceed it.
  const double bounds[] = {0.5, 0.75, 0.875, 0.9375, 0.96875};
  for (std::int32_t k = 1; k <= 5; ++k) {
    const double exact = decreaseRatio(8, k);
    EXPECT_GT(exact, bounds[k - 1]) << "k=" << k;
    EXPECT_LT(exact, 1.0);
  }
  EXPECT_DOUBLE_EQ(decreaseRatio(4, 4), 1.0);
  EXPECT_DOUBLE_EQ(decreaseRatio(4, 0), 0.0);
}

TEST(DecreaseRatio, MatchesLatticeCounts) {
  for (std::int32_t n = 2; n <= 8; ++n) {
    for (std::int32_t k = 1; k < n; ++k) {
      const double total = std::pow(2.0, n) - 1.0;
      const double remaining = std::pow(2.0, n - k) - 1.0;
      EXPECT_NEAR(decreaseRatio(n, k), (total - remaining) / total, 1e-12);
    }
  }
}

// ------------------------------------------------------------- AC search

TEST(AcSearch, FindsSingleLayer1Rap) {
  const LeafTable table = makeTable({"(a2, *, *, *)"});
  SearchStats stats;
  const auto patterns = acGuidedSearch(table, {0, 1, 2, 3}, {}, stats);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].ac.toString(table.schema()), "(a2, *, *, *)");
  EXPECT_DOUBLE_EQ(patterns[0].confidence, 1.0);
  EXPECT_EQ(patterns[0].layer, 1);
  EXPECT_TRUE(stats.early_stopped);
}

TEST(AcSearch, PrunesDescendantsOfAcceptedRap) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  SearchStats stats;
  const auto patterns = acGuidedSearch(table, {0, 1, 2, 3}, {}, stats);
  // Only the root pattern — none of its (fully anomalous) descendants.
  ASSERT_EQ(patterns.size(), 1u);
  for (const auto& p : patterns) {
    EXPECT_EQ(p.ac.toString(table.schema()), "(a1, *, *, *)");
  }
}

TEST(AcSearch, FindsRapsInDifferentCuboids) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  SearchStats stats;
  SearchConfig config;
  config.early_stop = false;  // exhaustive, to check the full candidate set
  const auto patterns = acGuidedSearch(table, {0, 1, 2, 3}, config, stats);
  std::vector<std::string> found;
  for (const auto& p : patterns) found.push_back(p.ac.toString(table.schema()));
  EXPECT_NE(std::find(found.begin(), found.end(), "(a1, *, *, *)"),
            found.end());
  EXPECT_NE(std::find(found.begin(), found.end(), "(*, b2, c1, *)"),
            found.end());
}

TEST(AcSearch, CandidatesPairwiseNonAncestral) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  SearchStats stats;
  const auto patterns = acGuidedSearch(table, {0, 1, 2, 3}, {}, stats);
  for (const auto& a : patterns) {
    for (const auto& b : patterns) {
      if (a.ac == b.ac) continue;
      EXPECT_FALSE(a.ac.isAncestorOf(b.ac));
    }
  }
}

TEST(AcSearch, ConfidenceThresholdIsStrict) {
  // Craft a table where (a1,*,*,*) has confidence exactly 0.5.
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  const auto a1 = AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  int toggle = 0;
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = dataset::leafFromIndex(schema, i);
    const bool anomalous = a1.matchesLeaf(leaf) && (toggle++ % 2 == 0);
    table.addRow(leaf, anomalous ? 0.0 : 100.0, 100.0, anomalous);
  }
  SearchStats stats;
  SearchConfig config;
  config.t_conf = 0.5;
  const auto patterns = acGuidedSearch(table, {0, 1, 2, 3}, config, stats);
  for (const auto& p : patterns) {
    EXPECT_GT(p.confidence, 0.5);
    EXPECT_FALSE(p.ac == a1);  // 0.5 is not > 0.5
  }
}

TEST(AcSearch, RestrictedAttributesNeverAppear) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  SearchStats stats;
  // Attribute 0 deleted: the true RAP is unreachable; whatever is found
  // must not constrain attribute 0, and nothing of confidence 1 at layer
  // 1 exists among {1, 2, 3}.
  const auto patterns = acGuidedSearch(table, {1, 2, 3}, {}, stats);
  for (const auto& p : patterns) {
    EXPECT_TRUE(p.ac.isWildcard(0));
  }
}

TEST(AcSearch, EmptyKeptAttributesFindsNothing) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  SearchStats stats;
  EXPECT_TRUE(acGuidedSearch(table, {}, {}, stats).empty());
  EXPECT_EQ(stats.cuboids_visited, 0u);
}

TEST(AcSearch, EarlyStopSkipsRemainingWork) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  SearchStats eager_stats;
  SearchConfig eager;
  eager.early_stop = true;
  acGuidedSearch(table, {0, 1, 2, 3}, eager, eager_stats);

  SearchStats full_stats;
  SearchConfig full;
  full.early_stop = false;
  acGuidedSearch(table, {0, 1, 2, 3}, full, full_stats);

  EXPECT_TRUE(eager_stats.early_stopped);
  EXPECT_FALSE(full_stats.early_stopped);
  EXPECT_LT(eager_stats.combinations_evaluated,
            full_stats.combinations_evaluated);
}

// -------------------------------------------------------------- RapMiner

TEST(RapScore, Equation3) {
  EXPECT_DOUBLE_EQ(rapScore(1.0, 1), 1.0);
  EXPECT_NEAR(rapScore(1.0, 2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(rapScore(0.9, 4), 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(rapScore(1.0, 0), 0.0);
}

TEST(RapMiner, EndToEndSingleRap) {
  const LeafTable table = makeTable({"(a1, b2, *, *)"});
  const auto result = RapMiner().localize(table, 3);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac.toString(table.schema()), "(a1, b2, *, *)");
  EXPECT_EQ(result.patterns[0].layer, 2);
  // C and D carry no signal and must be deleted by Algorithm 1.
  EXPECT_EQ(result.stats.attributes_deleted, 2);
}

TEST(RapMiner, RanksCoarserPatternsFirst) {
  // Two true RAPs at different layers with equal confidence: Eq. 3
  // prefers the lower layer.
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  RapMinerConfig config;
  config.search.early_stop = false;
  const auto result = RapMiner(config).localize(table, 5);
  ASSERT_GE(result.patterns.size(), 2u);
  EXPECT_EQ(result.patterns[0].ac.toString(table.schema()), "(a1, *, *, *)");
  EXPECT_GT(result.patterns[0].score, result.patterns[1].score);
}

TEST(RapMiner, TopKTruncates) {
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  RapMinerConfig config;
  config.search.early_stop = false;
  EXPECT_EQ(RapMiner(config).localize(table, 1).patterns.size(), 1u);
  // k <= 0 returns every candidate.
  EXPECT_GE(RapMiner(config).localize(table, 0).patterns.size(), 2u);
}

TEST(RapMiner, NoAnomaliesNoPatterns) {
  const LeafTable table = makeTable({});
  const auto result = RapMiner().localize(table, 5);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(RapMiner, AblationFlagSearchesFullLattice) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  RapMinerConfig no_delete;
  no_delete.cp.enable_attribute_deletion = false;
  const auto result = RapMiner(no_delete).localize(table, 5);
  EXPECT_EQ(result.stats.attributes_deleted, 0);
  EXPECT_EQ(result.stats.kept_attributes.size(), 4u);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac.toString(table.schema()), "(a1, *, *, *)");
}

TEST(RapMiner, DeletionShrinksVisitedCuboids) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  RapMinerConfig with;
  with.search.early_stop = false;
  RapMinerConfig without = with;
  without.cp.enable_attribute_deletion = false;
  const auto r_with = RapMiner(with).localize(table, 5);
  const auto r_without = RapMiner(without).localize(table, 5);
  EXPECT_LT(r_with.stats.cuboids_visited, r_without.stats.cuboids_visited);
}

TEST(RapMiner, StatsExposeClassificationPowers) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  const auto result = RapMiner().localize(table, 5);
  ASSERT_EQ(result.stats.classification_power.size(), 4u);
  EXPECT_DOUBLE_EQ(result.stats.classification_power[0], 1.0);
}

TEST(AcSearch, NumericOrderFindsTheSameCandidates) {
  // Visit order changes efficiency, never the exhaustive candidate set.
  const LeafTable table = makeTable({"(a1, *, *, *)", "(*, b2, c1, *)"});
  SearchConfig cp_order;
  cp_order.early_stop = false;
  SearchConfig numeric = cp_order;
  numeric.order = CuboidOrder::kNumeric;

  SearchStats s1;
  SearchStats s2;
  auto a = acGuidedSearch(table, {0, 1, 2, 3}, cp_order, s1);
  auto b = acGuidedSearch(table, {0, 1, 2, 3}, numeric, s2);
  auto key = [](const ScoredPattern& p) { return p.ac; };
  std::vector<AttributeCombination> acs_a;
  std::vector<AttributeCombination> acs_b;
  for (const auto& p : a) acs_a.push_back(key(p));
  for (const auto& p : b) acs_b.push_back(key(p));
  std::sort(acs_a.begin(), acs_a.end());
  std::sort(acs_b.begin(), acs_b.end());
  EXPECT_EQ(acs_a, acs_b);
  EXPECT_EQ(s1.combinations_evaluated, s2.combinations_evaluated);
}

TEST(RapMiner, CuboidOrderConfigPlumbsThrough) {
  const LeafTable table = makeTable({"(a1, *, *, *)"});
  RapMinerConfig config;
  config.search.order = CuboidOrder::kNumeric;
  const auto result = RapMiner(config).localize(table, 3);
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_EQ(result.patterns[0].ac.toString(table.schema()), "(a1, *, *, *)");
}

TEST(RapMinerConfig, RejectsInvalidThresholds) {
  RapMinerConfig bad;
  bad.search.t_conf = 1.5;
  EXPECT_DEATH({ RapMiner miner(bad); (void)miner; }, "t_conf");
  RapMinerConfig bad2;
  bad2.cp.t_cp = -0.5;
  EXPECT_DEATH({ RapMiner miner(bad2); (void)miner; }, "t_cp");
}

TEST(RapMinerBuilder, ValidateRejectsOutOfRangeKnobs) {
  // Builder::build() turns the constructor's RAP_CHECK aborts into a
  // recoverable Status for user-supplied thresholds.
  EXPECT_EQ(RapMiner::Builder().tCp(-0.5).validate().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(RapMiner::Builder().tCp(1.0).validate().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(RapMiner::Builder().tConf(0.0).validate().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(RapMiner::Builder().tConf(1.5).validate().code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(RapMiner::Builder().threads(-1).validate().code(),
            util::StatusCode::kInvalidArgument);

  const auto bad = RapMiner::Builder().tConf(2.0).build();
  ASSERT_FALSE(bad.isOk());
  EXPECT_EQ(bad.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(RapMinerBuilder, ValidateRejectsNonFiniteThresholds) {
  // Regression: NaN / Inf must produce a dedicated "finite number"
  // diagnostic instead of sneaking past (or confusing) range checks.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  for (const double bad : {nan, inf, -inf}) {
    const auto t_cp = RapMiner::Builder().tCp(bad).validate();
    EXPECT_EQ(t_cp.code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(t_cp.message().find("finite"), std::string::npos)
        << t_cp.message();
    const auto t_conf = RapMiner::Builder().tConf(bad).validate();
    EXPECT_EQ(t_conf.code(), util::StatusCode::kInvalidArgument);
    EXPECT_NE(t_conf.message().find("finite"), std::string::npos)
        << t_conf.message();
    EXPECT_FALSE(RapMiner::Builder().deadlineSeconds(bad).validate().isOk());
  }
  EXPECT_FALSE(RapMiner::Builder().deadlineSeconds(-1.0).validate().isOk());
  EXPECT_FALSE(RapMiner::Builder().maxLayers(-1).validate().isOk());
  EXPECT_TRUE(RapMiner::Builder().deadlineSeconds(0.5).maxLayers(2).validate()
                  .isOk());
}

TEST(RapMinerBuilder, BuildsWorkingMinerOnBoundaryValues) {
  // t_conf = 1.0 and t_cp = 0.0 sit on the closed ends of their ranges.
  const auto miner = RapMiner::Builder()
                         .tCp(0.0)
                         .tConf(1.0)
                         .attributeDeletion(false)
                         .earlyStop(false)
                         .cuboidOrder(CuboidOrder::kNumeric)
                         .threads(2)
                         .build();
  ASSERT_TRUE(miner.isOk());
  const auto result = miner->localize(makeTable({"(a1, *, *, *)"}), 0);
  // Confidence can never exceed 1.0, so t_conf = 1.0 accepts nothing.
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_EQ(result.stats.search_threads, 2);
}

TEST(RapMinerConfig, LegacyFlatConfigConvertsToNested) {
  LegacyRapMinerConfig flat;
  flat.t_cp = 0.01;
  flat.t_conf = 0.75;
  flat.enable_attribute_deletion = false;
  flat.early_stop = false;
  flat.cuboid_order = CuboidOrder::kNumeric;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const RapMinerConfig nested = flat;
#pragma GCC diagnostic pop
  EXPECT_EQ(nested.cp.t_cp, 0.01);
  EXPECT_EQ(nested.search.t_conf, 0.75);
  EXPECT_FALSE(nested.cp.enable_attribute_deletion);
  EXPECT_FALSE(nested.search.early_stop);
  EXPECT_EQ(nested.search.order, CuboidOrder::kNumeric);
  EXPECT_EQ(nested.parallel.threads, 1);
}

}  // namespace
}  // namespace rap::core
