// Parallel-vs-serial equivalence for Algorithm 2: the deterministic
// merge must make the pooled schedule bit-identical to the serial
// reference — patterns, confidences, scores, and every search-effort
// counter.  Also the regression suite for the trivial-input early
// return of RapMiner::localize.  This file runs under the CI TSan job.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/rapminer.h"
#include "core/search.h"
#include "dataset/groupby_kernel.h"
#include "gen/rapmd.h"
#include "util/thread_pool.h"

namespace rap {
namespace {

using core::LocalizationResult;
using core::RapMiner;
using core::RapMinerConfig;
using dataset::LeafTable;
using dataset::Schema;

/// Bit-exact equality of results: patterns (including double fields
/// compared with ==, not a tolerance) and the deterministic part of the
/// stats (wall times excluded, schedule-dependent by nature).
void expectBitIdentical(const LocalizationResult& serial,
                        const LocalizationResult& parallel) {
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].ac, parallel.patterns[i].ac) << "i=" << i;
    EXPECT_EQ(serial.patterns[i].confidence, parallel.patterns[i].confidence);
    EXPECT_EQ(serial.patterns[i].layer, parallel.patterns[i].layer);
    EXPECT_EQ(serial.patterns[i].score, parallel.patterns[i].score);
  }
  EXPECT_EQ(serial.stats.kept_attributes, parallel.stats.kept_attributes);
  EXPECT_EQ(serial.stats.attributes_deleted,
            parallel.stats.attributes_deleted);
  EXPECT_EQ(serial.stats.cuboids_visited, parallel.stats.cuboids_visited);
  EXPECT_EQ(serial.stats.combinations_evaluated,
            parallel.stats.combinations_evaluated);
  EXPECT_EQ(serial.stats.combinations_pruned,
            parallel.stats.combinations_pruned);
  EXPECT_EQ(serial.stats.candidates_found, parallel.stats.candidates_found);
  EXPECT_EQ(serial.stats.early_stopped, parallel.stats.early_stopped);
  ASSERT_EQ(serial.stats.layers.size(), parallel.stats.layers.size());
  for (std::size_t i = 0; i < serial.stats.layers.size(); ++i) {
    const auto& a = serial.stats.layers[i];
    const auto& b = parallel.stats.layers[i];
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.cuboids_visited, b.cuboids_visited);
    EXPECT_EQ(a.combinations_evaluated, b.combinations_evaluated);
    EXPECT_EQ(a.combinations_pruned, b.combinations_pruned);
    EXPECT_EQ(a.candidates_found, b.candidates_found);
  }
}

std::vector<gen::Case> rapmdCases(std::uint64_t seed, std::int32_t n,
                                  double label_noise = 0.02) {
  gen::RapmdConfig config;
  config.num_cases = n;
  config.label_noise = label_noise;
  gen::RapmdGenerator generator(Schema::cdn(), config, seed);
  return generator.generate();
}

class ThreadSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ThreadSweep, BitIdenticalOnRapmdCases) {
  const std::int32_t threads = GetParam();
  RapMinerConfig serial_config;
  RapMinerConfig parallel_config;
  parallel_config.parallel.threads = threads;
  const RapMiner serial(serial_config);
  const RapMiner parallel(parallel_config);
  EXPECT_EQ(parallel.localize(rapmdCases(1, 1)[0].table, 0)
                .stats.search_threads,
            threads == 1 ? 1 : threads);

  for (const auto& c : rapmdCases(20220627, 8)) {
    expectBitIdentical(serial.localize(c.table, 0),
                       parallel.localize(c.table, 0));
  }
}

TEST_P(ThreadSweep, BitIdenticalOnExhaustiveSearch) {
  // Deletion off + early stop off: every layer of the full lattice goes
  // through the merge, the worst case for ordering bugs.
  const std::int32_t threads = GetParam();
  RapMinerConfig base;
  base.cp.enable_attribute_deletion = false;
  base.search.early_stop = false;
  RapMinerConfig fanned = base;
  fanned.parallel.threads = threads;
  const RapMiner serial(base);
  const RapMiner parallel(fanned);
  for (const auto& c : rapmdCases(7, 4, /*label_noise=*/0.05)) {
    expectBitIdentical(serial.localize(c.table, 0),
                       parallel.localize(c.table, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSearch, ExternalPoolOverridesConfig) {
  util::ThreadPool pool(3);
  const RapMiner miner;  // parallel.threads = 1: no owned pool
  const auto c = rapmdCases(99, 1)[0];
  const auto serial = miner.localize(c.table, 0);
  const auto fanned = miner.localize(c.table, 0, &pool);
  EXPECT_EQ(serial.stats.search_threads, 1);
  EXPECT_EQ(fanned.stats.search_threads, 4);  // 3 workers + caller
  expectBitIdentical(serial, fanned);
}

TEST(ParallelSearch, SharedPoolSurvivesConcurrentLocalizations) {
  // Two threads localize different tables through one fan-out pool at
  // once — the per-call completion latch must keep them independent.
  util::ThreadPool pool(2);
  const RapMiner miner;
  const auto cases = rapmdCases(123, 4);
  std::vector<LocalizationResult> serial;
  for (const auto& c : cases) serial.push_back(miner.localize(c.table, 0));

  std::vector<LocalizationResult> parallel(cases.size());
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < 2; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t i = t; i < cases.size(); i += 2) {
        parallel[i] = miner.localize(cases[i].table, 0, &pool);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expectBitIdentical(serial[i], parallel[i]);
  }
}

TEST(ParallelSearch, ZeroThreadsResolvesToHardwareConcurrency) {
  EXPECT_GE(core::resolveThreads(0), 1);
  EXPECT_EQ(core::resolveThreads(1), 1);
  EXPECT_EQ(core::resolveThreads(8), 8);
  RapMinerConfig config;
  config.parallel.threads = 0;
  const auto c = rapmdCases(5, 1)[0];
  expectBitIdentical(RapMiner().localize(c.table, 0),
                     RapMiner(config).localize(c.table, 0));
}

// ------------------------------------------- trivial-input early return

/// The documented contract: empty result, zero counters, empty layers
/// and classification_power, early_stopped false.
void expectUntouchedStats(const LocalizationResult& result) {
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_TRUE(result.stats.classification_power.empty());
  EXPECT_TRUE(result.stats.kept_attributes.empty());
  EXPECT_TRUE(result.stats.layers.empty());
  EXPECT_EQ(result.stats.attributes_deleted, 0);
  EXPECT_EQ(result.stats.cuboids_visited, 0u);
  EXPECT_EQ(result.stats.combinations_evaluated, 0u);
  EXPECT_EQ(result.stats.candidates_found, 0u);
  EXPECT_FALSE(result.stats.early_stopped);
}

TEST(LocalizeEarlyReturn, EmptyTable) {
  const LeafTable table(Schema::tiny());
  expectUntouchedStats(RapMiner().localize(table, 5));
}

TEST(LocalizeEarlyReturn, NoAnomalousLeaves) {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    table.addRow(dataset::leafFromIndex(schema, i), 100.0, 100.0, false);
  }
  expectUntouchedStats(RapMiner().localize(table, 5));
}

}  // namespace
}  // namespace rap
