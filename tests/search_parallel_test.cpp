// Parallel-vs-serial equivalence for Algorithm 2: the deterministic
// merge must make the pooled schedule bit-identical to the serial
// reference — patterns, confidences, scores, and every search-effort
// counter.  Also the regression suite for the trivial-input early
// return of RapMiner::localize.  This file runs under the CI TSan job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "core/rapminer.h"
#include "core/search.h"
#include "dataset/groupby_kernel.h"
#include "gen/rapmd.h"
#include "util/thread_pool.h"

namespace rap {
namespace {

using core::LocalizationResult;
using core::RapMiner;
using core::RapMinerConfig;
using dataset::LeafTable;
using dataset::Schema;

/// Bit-exact equality of results: patterns (including double fields
/// compared with ==, not a tolerance) and the deterministic part of the
/// stats (wall times excluded, schedule-dependent by nature).
void expectBitIdentical(const LocalizationResult& serial,
                        const LocalizationResult& parallel) {
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].ac, parallel.patterns[i].ac) << "i=" << i;
    EXPECT_EQ(serial.patterns[i].confidence, parallel.patterns[i].confidence);
    EXPECT_EQ(serial.patterns[i].layer, parallel.patterns[i].layer);
    EXPECT_EQ(serial.patterns[i].score, parallel.patterns[i].score);
  }
  EXPECT_EQ(serial.stats.kept_attributes, parallel.stats.kept_attributes);
  EXPECT_EQ(serial.stats.attributes_deleted,
            parallel.stats.attributes_deleted);
  EXPECT_EQ(serial.stats.cuboids_visited, parallel.stats.cuboids_visited);
  EXPECT_EQ(serial.stats.combinations_evaluated,
            parallel.stats.combinations_evaluated);
  EXPECT_EQ(serial.stats.combinations_pruned,
            parallel.stats.combinations_pruned);
  EXPECT_EQ(serial.stats.candidates_found, parallel.stats.candidates_found);
  EXPECT_EQ(serial.stats.early_stopped, parallel.stats.early_stopped);
  ASSERT_EQ(serial.stats.layers.size(), parallel.stats.layers.size());
  for (std::size_t i = 0; i < serial.stats.layers.size(); ++i) {
    const auto& a = serial.stats.layers[i];
    const auto& b = parallel.stats.layers[i];
    EXPECT_EQ(a.layer, b.layer);
    EXPECT_EQ(a.cuboids_visited, b.cuboids_visited);
    EXPECT_EQ(a.combinations_evaluated, b.combinations_evaluated);
    EXPECT_EQ(a.combinations_pruned, b.combinations_pruned);
    EXPECT_EQ(a.candidates_found, b.candidates_found);
  }
}

std::vector<gen::Case> rapmdCases(std::uint64_t seed, std::int32_t n,
                                  double label_noise = 0.02) {
  gen::RapmdConfig config;
  config.num_cases = n;
  config.label_noise = label_noise;
  gen::RapmdGenerator generator(Schema::cdn(), config, seed);
  return generator.generate();
}

class ThreadSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ThreadSweep, BitIdenticalOnRapmdCases) {
  const std::int32_t threads = GetParam();
  RapMinerConfig serial_config;
  RapMinerConfig parallel_config;
  parallel_config.parallel.threads = threads;
  const RapMiner serial(serial_config);
  const RapMiner parallel(parallel_config);
  // search_threads reports the concurrency actually used, so the
  // configured budget is an upper bound, not the reported value: a layer
  // with c cuboids enlists at most c - 1 helpers.  (The exact-width
  // cases live in the SearchThreads suite below.)
  const auto reported =
      parallel.localize(rapmdCases(1, 1)[0].table, 0).stats.search_threads;
  EXPECT_GE(reported, threads == 1 ? 1 : 2);
  EXPECT_LE(reported, threads);

  for (const auto& c : rapmdCases(20220627, 8)) {
    expectBitIdentical(serial.localize(c.table, 0),
                       parallel.localize(c.table, 0));
  }
}

TEST_P(ThreadSweep, BitIdenticalOnExhaustiveSearch) {
  // Deletion off + early stop off: every layer of the full lattice goes
  // through the merge, the worst case for ordering bugs.
  const std::int32_t threads = GetParam();
  RapMinerConfig base;
  base.cp.enable_attribute_deletion = false;
  base.search.early_stop = false;
  RapMinerConfig fanned = base;
  fanned.parallel.threads = threads;
  const RapMiner serial(base);
  const RapMiner parallel(fanned);
  for (const auto& c : rapmdCases(7, 4, /*label_noise=*/0.05)) {
    expectBitIdentical(serial.localize(c.table, 0),
                       parallel.localize(c.table, 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSearch, ExternalPoolOverridesConfig) {
  util::ThreadPool pool(3);
  const RapMiner miner;  // parallel.threads = 1: no owned pool
  const auto c = rapmdCases(99, 1)[0];
  const auto serial = miner.localize(c.table, 0);
  const auto fanned = miner.localize(c.table, 0, &pool);
  EXPECT_EQ(serial.stats.search_threads, 1);
  EXPECT_EQ(fanned.stats.search_threads, 4);  // 3 workers + caller
  expectBitIdentical(serial, fanned);
}

TEST(ParallelSearch, SharedPoolSurvivesConcurrentLocalizations) {
  // Two threads localize different tables through one fan-out pool at
  // once — the per-call completion latch must keep them independent.
  util::ThreadPool pool(2);
  const RapMiner miner;
  const auto cases = rapmdCases(123, 4);
  std::vector<LocalizationResult> serial;
  for (const auto& c : cases) serial.push_back(miner.localize(c.table, 0));

  std::vector<LocalizationResult> parallel(cases.size());
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < 2; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t i = t; i < cases.size(); i += 2) {
        parallel[i] = miner.localize(cases[i].table, 0, &pool);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expectBitIdentical(serial[i], parallel[i]);
  }
}

TEST(ParallelSearch, ZeroThreadsResolvesToHardwareConcurrency) {
  EXPECT_GE(core::resolveThreads(0), 1);
  EXPECT_EQ(core::resolveThreads(1), 1);
  EXPECT_EQ(core::resolveThreads(8), 8);
  RapMinerConfig config;
  config.parallel.threads = 0;
  const auto c = rapmdCases(5, 1)[0];
  expectBitIdentical(RapMiner().localize(c.table, 0),
                     RapMiner(config).localize(c.table, 0));
}

// ------------------------------------------ threads actually used

/// Fully populated labeled table over Schema::synthetic(cards); every
/// third leaf anomalous so the search has work at every layer.
LeafTable syntheticTable(const std::vector<std::int32_t>& cards) {
  const Schema schema = Schema::synthetic(cards);
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const bool anomalous = i % 3 == 0;
    table.addRow(dataset::leafFromIndex(schema, i), anomalous ? 10.0 : 100.0,
                 100.0, anomalous);
  }
  return table;
}

TEST(SearchThreads, SingleCuboidLayersStaySerial) {
  // One attribute: every layer has exactly one cuboid, so the parallel
  // schedule never engages.  The stat must say 1 — this used to report
  // pool size + 1 regardless of what the layers could use.
  util::ThreadPool pool(3);
  RapMinerConfig config;
  config.cp.enable_attribute_deletion = false;
  const auto result =
      RapMiner(config).localize(syntheticTable({6}), 0, &pool);
  EXPECT_EQ(result.stats.search_threads, 1);
}

TEST(SearchThreads, CappedByWidestLayer) {
  // Two attributes, deletion and early stop off: layer 1 has 2 cuboids
  // (at most 1 helper), layer 2 has 1 (serial).  Even an 8-worker pool
  // must report 2 threads used, not 9.
  util::ThreadPool pool(8);
  RapMinerConfig config;
  config.cp.enable_attribute_deletion = false;
  config.search.early_stop = false;
  const auto result =
      RapMiner(config).localize(syntheticTable({3, 2}), 0, &pool);
  EXPECT_EQ(result.stats.search_threads, 2);
}

TEST(SearchThreads, WideLayersUseTheWholePool) {
  // Four kept attributes give layer 1 four cuboids — enough to enlist
  // both workers of a 2-worker pool: 2 helpers + the caller.
  util::ThreadPool pool(2);
  RapMinerConfig config;
  config.cp.enable_attribute_deletion = false;
  const auto c = rapmdCases(42, 1)[0];
  EXPECT_EQ(RapMiner(config).localize(c.table, 0, &pool).stats.search_threads,
            3);
}

// --------------------------------------------------- cuboid visit order

TEST(OrderedCuboids, IntegerWeightsMatchPowReference) {
  // The integer bit-sum weights must reproduce the retired
  // std::pow(2.0, n - rank) stable_sort comparator exactly: every term
  // and sum is < 2^53, hence exact in double as well, and the mask-asc
  // tiebreak matches stability over cuboidsAtLayer's ascending output.
  const std::vector<std::vector<dataset::AttrId>> kept_sets = {
      {0, 1, 2, 3}, {3, 1, 0, 2}, {2, 0, 4, 1, 3}, {1, 0}, {5}};
  for (const auto& kept : kept_sets) {
    const auto n = static_cast<std::int32_t>(kept.size());
    const auto weight = [&](dataset::CuboidMask mask) {
      double w = 0.0;
      for (std::int32_t rank = 0; rank < n; ++rank) {
        if ((mask & (1u << kept[static_cast<std::size_t>(rank)])) != 0) {
          w += std::pow(2.0, n - rank);
        }
      }
      return w;
    };
    for (std::int32_t layer = 1; layer <= n; ++layer) {
      const auto ordered =
          core::orderedCuboids(kept, layer, core::CuboidOrder::kCpWeighted);
      auto reference =
          core::orderedCuboids(kept, layer, core::CuboidOrder::kNumeric);
      std::stable_sort(reference.begin(), reference.end(),
                       [&weight](dataset::CuboidMask a, dataset::CuboidMask b) {
                         return weight(a) > weight(b);
                       });
      EXPECT_EQ(ordered, reference)
          << "n=" << n << " layer=" << layer;
    }
  }
}

// ----------------------------------------------- workspace retention

TEST(SearchWorkspace, RetainedWorkspaceBitIdenticalAcrossSearches) {
  // One WorkspacePool shared across repeated localizations: passes two
  // and three reuse pass one's kernel transpose and scratch capacity
  // (the steady state the allocation-free hot path relies on), and every
  // result must stay bit-identical to a fresh serial miner's.
  core::WorkspacePool shared;
  util::ThreadPool pool(3);
  const RapMiner miner;
  const auto cases = rapmdCases(314, 3);
  std::vector<LocalizationResult> reference;
  for (const auto& c : cases) reference.push_back(miner.localize(c.table, 0));
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < cases.size(); ++i) {
      expectBitIdentical(reference[i],
                         miner.localize(cases[i].table, 0, &pool, &shared));
    }
  }
  // A single caller checks out one workspace at a time, so exactly one
  // is retained across all nine searches.
  EXPECT_EQ(shared.retained(), 1u);
}

TEST(SearchWorkspace, ConcurrentLeasesStayIndependent) {
  // TSan case: two caller threads lease from one WorkspacePool and
  // localize concurrently through one fan-out pool.  Each lease must be
  // a private workspace — the kernel inside is shared read-only only
  // across its own search's helpers.
  core::WorkspacePool shared;
  util::ThreadPool pool(2);
  const RapMiner miner;
  const auto cases = rapmdCases(2718, 4);
  std::vector<LocalizationResult> reference;
  for (const auto& c : cases) reference.push_back(miner.localize(c.table, 0));
  std::vector<LocalizationResult> observed(cases.size());
  std::vector<std::thread> callers;
  for (std::size_t t = 0; t < 2; ++t) {
    callers.emplace_back([&, t] {
      for (std::size_t i = t; i < cases.size(); i += 2) {
        observed[i] = miner.localize(cases[i].table, 0, &pool, &shared);
      }
    });
  }
  for (auto& caller : callers) caller.join();
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expectBitIdentical(reference[i], observed[i]);
  }
  EXPECT_GE(shared.retained(), 1u);
  EXPECT_LE(shared.retained(), 2u);
}

// ------------------------------------------- trivial-input early return

/// The documented contract: empty result, zero counters, empty layers
/// and classification_power, early_stopped false.
void expectUntouchedStats(const LocalizationResult& result) {
  EXPECT_TRUE(result.patterns.empty());
  EXPECT_TRUE(result.stats.classification_power.empty());
  EXPECT_TRUE(result.stats.kept_attributes.empty());
  EXPECT_TRUE(result.stats.layers.empty());
  EXPECT_EQ(result.stats.attributes_deleted, 0);
  EXPECT_EQ(result.stats.cuboids_visited, 0u);
  EXPECT_EQ(result.stats.combinations_evaluated, 0u);
  EXPECT_EQ(result.stats.candidates_found, 0u);
  EXPECT_FALSE(result.stats.early_stopped);
}

TEST(LocalizeEarlyReturn, EmptyTable) {
  const LeafTable table(Schema::tiny());
  expectUntouchedStats(RapMiner().localize(table, 5));
}

TEST(LocalizeEarlyReturn, NoAnomalousLeaves) {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    table.addRow(dataset::leafFromIndex(schema, i), 100.0, 100.0, false);
  }
  expectUntouchedStats(RapMiner().localize(table, 5));
}

}  // namespace
}  // namespace rap
