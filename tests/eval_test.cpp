#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "dataset/cuboid.h"
#include "eval/export.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "gen/rapmd.h"
#include "io/csv.h"
#include "util/strings.h"

namespace rap::eval {
namespace {

using dataset::AttributeCombination;
using dataset::Schema;

AttributeCombination parse(const Schema& schema, const std::string& text) {
  return AttributeCombination::parse(schema, text).value();
}

// ----------------------------------------------------------------- match

TEST(MatchPatterns, CountsTpFpFn) {
  const Schema schema = Schema::tiny();
  const auto counts = matchPatterns(
      {parse(schema, "(a1, *, *, *)"), parse(schema, "(a2, *, *, *)")},
      {parse(schema, "(a1, *, *, *)"), parse(schema, "(*, b1, *, *)")});
  EXPECT_EQ(counts.tp, 1u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(MatchPatterns, ExactMatchOnly) {
  // An ancestor of the truth is NOT a hit — the paper scores exact RAPs.
  const Schema schema = Schema::tiny();
  const auto counts = matchPatterns({parse(schema, "(a1, *, *, *)")},
                                    {parse(schema, "(a1, b1, *, *)")});
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 1u);
  EXPECT_EQ(counts.fn, 1u);
}

TEST(MatchPatterns, EmptySets) {
  const auto counts = matchPatterns({}, {});
  EXPECT_EQ(counts.tp, 0u);
  EXPECT_EQ(counts.fp, 0u);
  EXPECT_EQ(counts.fn, 0u);
}

// -------------------------------------------------------------------- F1

TEST(F1Accumulator, PerfectPrediction) {
  const Schema schema = Schema::tiny();
  F1Accumulator acc;
  acc.add({parse(schema, "(a1, *, *, *)")}, {parse(schema, "(a1, *, *, *)")});
  EXPECT_DOUBLE_EQ(acc.precision(), 1.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 1.0);
  EXPECT_DOUBLE_EQ(acc.f1(), 1.0);
}

TEST(F1Accumulator, Equation6) {
  // tp=2, fp=1, fn=3: P=2/3, R=2/5, F1 = 2PR/(P+R) = 0.5.
  F1Accumulator acc;
  acc.add(MatchCounts{2, 1, 3});
  EXPECT_NEAR(acc.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.recall(), 0.4, 1e-12);
  EXPECT_NEAR(acc.f1(), 0.5, 1e-12);
}

TEST(F1Accumulator, AccumulatesAcrossCases) {
  F1Accumulator acc;
  acc.add(MatchCounts{1, 0, 0});
  acc.add(MatchCounts{0, 1, 1});
  EXPECT_DOUBLE_EQ(acc.precision(), 0.5);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.5);
  EXPECT_DOUBLE_EQ(acc.f1(), 0.5);
}

TEST(F1Accumulator, EmptyIsZeroNotNan) {
  const F1Accumulator acc;
  EXPECT_DOUBLE_EQ(acc.precision(), 0.0);
  EXPECT_DOUBLE_EQ(acc.recall(), 0.0);
  EXPECT_DOUBLE_EQ(acc.f1(), 0.0);
}

// ------------------------------------------------------------------ RC@k

std::vector<core::ScoredPattern> ranked(const Schema& schema,
                                        const std::vector<std::string>& texts) {
  std::vector<core::ScoredPattern> out;
  double score = 1.0;
  for (const auto& text : texts) {
    core::ScoredPattern p;
    p.ac = parse(schema, text);
    p.score = score;
    score -= 0.1;
    out.push_back(std::move(p));
  }
  return out;
}

TEST(RecallAtK, Equation7) {
  const Schema schema = Schema::tiny();
  RecallAtKAccumulator acc(3);
  // Case 1: 2 truths, top-3 hits one of them.
  acc.add(ranked(schema, {"(a1, *, *, *)", "(a2, *, *, *)", "(a3, *, *, *)"}),
          {parse(schema, "(a2, *, *, *)"), parse(schema, "(*, b1, *, *)")});
  // Case 2: 1 truth, hit at rank 1.
  acc.add(ranked(schema, {"(*, *, c1, *)"}), {parse(schema, "(*, *, c1, *)")});
  EXPECT_NEAR(acc.value(), 2.0 / 3.0, 1e-12);
}

TEST(RecallAtK, TruncatesAtK) {
  const Schema schema = Schema::tiny();
  RecallAtKAccumulator acc(1);
  // Truth sits at rank 2 — outside top-1.
  acc.add(ranked(schema, {"(a1, *, *, *)", "(a2, *, *, *)"}),
          {parse(schema, "(a2, *, *, *)")});
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(RecallAtK, EmptyTruthIsZeroNotNan) {
  const RecallAtKAccumulator acc(3);
  EXPECT_DOUBLE_EQ(acc.value(), 0.0);
}

TEST(PatternsToAcs, PreservesOrder) {
  const Schema schema = Schema::tiny();
  const auto patterns = ranked(schema, {"(a1, *, *, *)", "(a2, *, *, *)"});
  const auto acs = patternsToAcs(patterns);
  ASSERT_EQ(acs.size(), 2u);
  EXPECT_EQ(acs[0], patterns[0].ac);
  EXPECT_EQ(acs[1], patterns[1].ac);
}

// ---------------------------------------------------------------- runner

std::vector<gen::Case> twoCases() {
  gen::RapmdConfig config;
  config.num_cases = 2;
  gen::RapmdGenerator generator(Schema::cdn(), config, 77);
  return generator.generate();
}

TEST(Runner, RunsEveryCaseWithTiming) {
  const auto cases = twoCases();
  const auto localizer = rapminerLocalizer({});
  const auto runs = runLocalizer(localizer, cases, {.k = 5});
  ASSERT_EQ(runs.size(), 2u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].case_id, cases[i].id);
    EXPECT_GE(runs[i].seconds, 0.0);
    EXPECT_LE(runs[i].predictions.size(), 5u);
  }
}

TEST(Runner, KEqualsTruthLimitsPerCase) {
  const auto cases = twoCases();
  const auto localizer = rapminerLocalizer({});
  const auto runs = runLocalizer(localizer, cases, {.k_equals_truth = true});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_LE(runs[i].predictions.size(), cases[i].truth.size());
  }
}

TEST(Runner, StandardLocalizersHaveUniqueNames) {
  const auto localizers = standardLocalizers({}, /*include_hotspot=*/true);
  ASSERT_EQ(localizers.size(), 6u);
  std::set<std::string> names;
  for (const auto& l : localizers) names.insert(l.name);
  EXPECT_EQ(names.size(), 6u);
  EXPECT_TRUE(names.contains("RAPMiner"));
  EXPECT_TRUE(names.contains("HotSpot"));
}

TEST(Export, RunsCsvContainsEveryPrediction) {
  const auto cases = twoCases();
  const auto localizer = rapminerLocalizer({});
  const auto runs = runLocalizer(localizer, cases, {.k = 5});

  const std::string path =
      (std::filesystem::temp_directory_path() / "rap_eval_runs.csv").string();
  ASSERT_TRUE(
      writeRunsCsv(path, cases[0].table.schema(), runs, cases).isOk());
  const auto rows = io::readCsvFile(path).value();
  std::size_t predictions = 0;
  for (const auto& run : runs) predictions += run.predictions.size();
  EXPECT_EQ(rows.size(), predictions + 1);  // + header
  EXPECT_EQ(rows[0][0], "case_id");
  // Every data row has the full column set and a parsable score.
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ASSERT_EQ(rows[r].size(), 8u);
    EXPECT_TRUE(util::parseDouble(rows[r][5]).isOk());
    EXPECT_TRUE(rows[r][7] == "0" || rows[r][7] == "1");
  }
  std::filesystem::remove(path);
}

TEST(Export, RunsCsvRejectsMismatchedVectors) {
  const auto cases = twoCases();
  EXPECT_FALSE(writeRunsCsv("/tmp/never.csv", cases[0].table.schema(), {},
                            cases)
                   .isOk());
}

TEST(Export, MetricsCsvRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rap_eval_metrics.csv")
          .string();
  ASSERT_TRUE(writeMetricsCsv(path, {{"fig8b", "RAPMiner", "RC@3", 0.815},
                                     {"fig8b", "Squeeze", "RC@3", 0.301}})
                  .isOk());
  const auto rows = io::readCsvFile(path).value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (io::CsvRow{"fig8b", "RAPMiner", "RC@3", "0.815000"}));
  std::filesystem::remove(path);
}

TEST(Runner, AggregatesMatchManualComputation) {
  const auto cases = twoCases();
  const auto localizer = rapminerLocalizer({});
  const auto runs = runLocalizer(localizer, cases, {.k = 5});

  RecallAtKAccumulator rc(3);
  F1Accumulator f1;
  util::TimingStats timing;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    rc.add(runs[i].predictions, cases[i].truth);
    f1.add(patternsToAcs(runs[i].predictions), cases[i].truth);
    timing.add(runs[i].seconds);
  }
  EXPECT_DOUBLE_EQ(aggregateRecallAtK(runs, cases, 3), rc.value());
  EXPECT_DOUBLE_EQ(aggregateF1(runs, cases), f1.f1());
  EXPECT_DOUBLE_EQ(aggregateTiming(runs).mean(), timing.mean());
}

}  // namespace
}  // namespace rap::eval
