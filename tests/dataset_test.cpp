#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "dataset/attribute_combination.h"
#include "dataset/cuboid.h"
#include "dataset/index.h"
#include "dataset/leaf_table.h"
#include "dataset/schema.h"

namespace rap::dataset {
namespace {

// ---------------------------------------------------------------- Schema

TEST(Schema, CdnMatchesTableI) {
  const Schema schema = Schema::cdn();
  ASSERT_EQ(schema.attributeCount(), 4);
  EXPECT_EQ(schema.attribute(0).name(), "Location");
  EXPECT_EQ(schema.cardinality(0), 33);
  EXPECT_EQ(schema.cardinality(1), 4);
  EXPECT_EQ(schema.cardinality(2), 4);
  EXPECT_EQ(schema.cardinality(3), 20);
  EXPECT_EQ(schema.leafCount(), 10560u);  // paper §II-B worst case
  EXPECT_EQ(schema.cuboidCount(), 15u);   // paper Fig. 2
}

TEST(Schema, ElementLookupRoundTrip) {
  const Schema schema = Schema::cdn();
  const auto& attr = schema.attribute(3);
  for (ElemId e = 0; e < attr.cardinality(); ++e) {
    EXPECT_EQ(attr.elementId(attr.elementName(e)).value(), e);
  }
}

TEST(Schema, UnknownNamesAreErrors) {
  const Schema schema = Schema::tiny();
  EXPECT_FALSE(schema.attributeId("Nope").isOk());
  EXPECT_FALSE(schema.attribute(0).elementId("nope").isOk());
}

TEST(Schema, AttributeIdLookup) {
  const Schema schema = Schema::cdn();
  EXPECT_EQ(schema.attributeId("Website").value(), 3);
  EXPECT_EQ(schema.attributeId("Location").value(), 0);
}

TEST(Schema, SyntheticCardinalities) {
  const Schema schema = Schema::synthetic({5, 7});
  ASSERT_EQ(schema.attributeCount(), 2);
  EXPECT_EQ(schema.cardinality(0), 5);
  EXPECT_EQ(schema.cardinality(1), 7);
  EXPECT_EQ(schema.leafCount(), 35u);
}

// ---------------------------------------------- AttributeCombination

TEST(AttributeCombination, DefaultAllWildcard) {
  const AttributeCombination ac(4);
  EXPECT_EQ(ac.dim(), 0);
  EXPECT_TRUE(ac.isRoot());
  EXPECT_FALSE(ac.isLeaf());
  EXPECT_EQ(ac.cuboidMask(), 0u);
}

TEST(AttributeCombination, DimAndLayerCountConcreteSlots) {
  AttributeCombination ac(4);
  ac.setSlot(0, 1);
  ac.setSlot(3, 2);
  EXPECT_EQ(ac.dim(), 2);
  EXPECT_EQ(ac.layer(), 2);
  EXPECT_EQ(ac.cuboidMask(), 0b1001u);
  EXPECT_FALSE(ac.isLeaf());
}

TEST(AttributeCombination, ParseAgainstSchema) {
  const Schema schema = Schema::cdn();
  const auto ac =
      AttributeCombination::parse(schema, "(L1, *, *, Site1)").value();
  EXPECT_EQ(ac.dim(), 2);
  EXPECT_EQ(ac.slot(0), 0);
  EXPECT_TRUE(ac.isWildcard(1));
  EXPECT_TRUE(ac.isWildcard(2));
  EXPECT_EQ(ac.slot(3), 0);
  EXPECT_EQ(ac.toString(schema), "(L1, *, *, Site1)");
}

TEST(AttributeCombination, ParseWithoutParens) {
  const Schema schema = Schema::tiny();
  const auto ac = AttributeCombination::parse(schema, "a2,*,c1,*").value();
  EXPECT_EQ(ac.slot(0), 1);
  EXPECT_EQ(ac.slot(2), 0);
}

TEST(AttributeCombination, ParseErrors) {
  const Schema schema = Schema::tiny();
  EXPECT_FALSE(AttributeCombination::parse(schema, "(a1, *)").isOk());
  EXPECT_FALSE(AttributeCombination::parse(schema, "(zz, *, *, *)").isOk());
}

TEST(AttributeCombination, MatchesLeaf) {
  const Schema schema = Schema::tiny();
  const auto pattern =
      AttributeCombination::parse(schema, "(a1, *, *, d1)").value();
  const auto hit =
      AttributeCombination::parse(schema, "(a1, b2, c1, d1)").value();
  const auto miss =
      AttributeCombination::parse(schema, "(a2, b2, c1, d1)").value();
  EXPECT_TRUE(pattern.matchesLeaf(hit));
  EXPECT_FALSE(pattern.matchesLeaf(miss));
  EXPECT_TRUE(hit.matchesLeaf(hit));  // a leaf matches itself
}

TEST(AttributeCombination, AncestorAndCovers) {
  const Schema schema = Schema::tiny();
  const auto coarse =
      AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  const auto mid = AttributeCombination::parse(schema, "(a1, b1, *, *)").value();
  const auto other =
      AttributeCombination::parse(schema, "(a2, b1, *, *)").value();

  EXPECT_TRUE(coarse.isAncestorOf(mid));
  EXPECT_FALSE(mid.isAncestorOf(coarse));
  EXPECT_FALSE(coarse.isAncestorOf(coarse));  // proper ancestry
  EXPECT_TRUE(coarse.covers(coarse));
  EXPECT_TRUE(coarse.covers(mid));
  EXPECT_FALSE(coarse.covers(other));
  EXPECT_FALSE(coarse.isAncestorOf(other));
}

TEST(AttributeCombination, ParentsReplaceOneSlot) {
  const Schema schema = Schema::tiny();
  const auto ac = AttributeCombination::parse(schema, "(a1, b1, *, d2)").value();
  const auto parents = ac.parents();
  ASSERT_EQ(parents.size(), 3u);  // one per concrete slot
  for (const auto& parent : parents) {
    EXPECT_EQ(parent.dim(), 2);
    EXPECT_TRUE(parent.isAncestorOf(ac));
  }
}

TEST(AttributeCombination, RootHasNoParents) {
  const AttributeCombination root(4);
  EXPECT_TRUE(root.parents().empty());
}

TEST(AttributeCombination, ChildrenExpandEveryWildcardElement) {
  const Schema schema = Schema::tiny();  // A(3) B(2) C(2) D(2)
  const auto ac = AttributeCombination::parse(schema, "(a1, *, c1, *)").value();
  const auto children = ac.children(schema);
  // wildcard slots B (2 elements) and D (2 elements) -> 4 children.
  ASSERT_EQ(children.size(), 4u);
  for (const auto& child : children) {
    EXPECT_EQ(child.dim(), 3);
    EXPECT_TRUE(ac.isAncestorOf(child));
  }
}

TEST(AttributeCombination, HashConsistentWithEquality) {
  const Schema schema = Schema::tiny();
  const auto a = AttributeCombination::parse(schema, "(a1, *, c1, *)").value();
  const auto b = AttributeCombination::parse(schema, "(a1, *, c1, *)").value();
  const auto c = AttributeCombination::parse(schema, "(a1, *, c2, *)").value();
  const AcHash hash;
  EXPECT_EQ(a, b);
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_FALSE(a == c);

  std::unordered_set<AttributeCombination, AcHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(c);
  EXPECT_EQ(set.size(), 2u);
}

TEST(AttributeCombination, WildcardVsElementZeroDistinct) {
  // Regression guard: '*' (id -1) must not hash/compare equal to element 0.
  AttributeCombination wild(2);
  AttributeCombination zero(2);
  zero.setSlot(0, 0);
  EXPECT_FALSE(wild == zero);
}

// ---------------------------------------------------------------- Cuboid

TEST(Cuboid, LatticeHas2ToNMinus1Cuboids) {
  const Schema schema = Schema::cdn();
  const auto all = allCuboidsByLayer(allAttributesMask(schema));
  EXPECT_EQ(all.size(), 15u);
  // Layer sizes 4,6,4,1 as in Fig. 2.
  EXPECT_EQ(cuboidsAtLayer(allAttributesMask(schema), 1).size(), 4u);
  EXPECT_EQ(cuboidsAtLayer(allAttributesMask(schema), 2).size(), 6u);
  EXPECT_EQ(cuboidsAtLayer(allAttributesMask(schema), 3).size(), 4u);
  EXPECT_EQ(cuboidsAtLayer(allAttributesMask(schema), 4).size(), 1u);
}

TEST(Cuboid, OrderedByLayer) {
  const auto all = allCuboidsByLayer(0b1111);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(cuboidLayer(all[i - 1]), cuboidLayer(all[i]));
  }
}

TEST(Cuboid, RestrictedLattice) {
  // Only attributes 0 and 2 allowed -> 3 cuboids.
  const auto all = allCuboidsByLayer(0b0101);
  EXPECT_EQ(all.size(), 3u);
  for (const auto mask : all) {
    EXPECT_EQ(mask & ~0b0101u, 0u);
  }
}

TEST(Cuboid, SizeIsCardinalityProduct) {
  const Schema schema = Schema::cdn();
  EXPECT_EQ(cuboidSize(schema, 0b0001), 33u);
  EXPECT_EQ(cuboidSize(schema, 0b1001), 660u);    // Location x Website
  EXPECT_EQ(cuboidSize(schema, 0b1111), 10560u);  // paper §II-B
}

TEST(Cuboid, NameListsAttributes) {
  const Schema schema = Schema::cdn();
  EXPECT_EQ(cuboidName(schema, 0b1001), "Cub{Location,Website}");
}

TEST(Cuboid, EnumerateMatchesSizeAndIsUnique) {
  const Schema schema = Schema::tiny();
  const auto acs = enumerateCuboid(schema, 0b0011);
  EXPECT_EQ(acs.size(), cuboidSize(schema, 0b0011));
  const std::set<AttributeCombination> unique(acs.begin(), acs.end());
  EXPECT_EQ(unique.size(), acs.size());
  for (const auto& ac : acs) {
    EXPECT_EQ(ac.cuboidMask(), 0b0011u);
  }
}

TEST(Cuboid, LeafIndexRoundTrip) {
  const Schema schema = Schema::tiny();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = leafFromIndex(schema, i);
    EXPECT_TRUE(leaf.isLeaf());
    EXPECT_EQ(leafToIndex(schema, leaf), i);
  }
}

TEST(Cuboid, ForEachVisitsAll) {
  const Schema schema = Schema::tiny();
  std::size_t count = 0;
  forEachInCuboid(schema, 0b1111,
                  [&count](const AttributeCombination&) { ++count; });
  EXPECT_EQ(count, schema.leafCount());
}

// ------------------------------------------------------------- LeafTable

LeafTable tinyTable() {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  // Mark everything under (a1, *, *, *) anomalous.
  const auto broken =
      AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  for (std::uint64_t i = 0; i < schema.leafCount(); ++i) {
    const auto leaf = leafFromIndex(schema, i);
    const bool anomalous = broken.matchesLeaf(leaf);
    table.addRow(leaf, anomalous ? 10.0 : 100.0, 100.0, anomalous);
  }
  return table;
}

TEST(LeafTable, CountsAndTotals) {
  const LeafTable table = tinyTable();
  EXPECT_EQ(table.size(), 24u);
  EXPECT_EQ(table.anomalousCount(), 8u);  // 1/3 of A's elements
  EXPECT_DOUBLE_EQ(table.totalF(), 2400.0);
  EXPECT_DOUBLE_EQ(table.totalV(), 8 * 10.0 + 16 * 100.0);
}

TEST(LeafTable, GroupByLayer1MatchesAggregateFor) {
  const LeafTable table = tinyTable();
  const auto groups = table.groupBy(0b0001);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    const auto direct = table.aggregateFor(g.ac);
    EXPECT_EQ(g.total, direct.total);
    EXPECT_EQ(g.anomalous, direct.anomalous);
    EXPECT_DOUBLE_EQ(g.v_sum, direct.v_sum);
    EXPECT_DOUBLE_EQ(g.f_sum, direct.f_sum);
  }
}

TEST(LeafTable, GroupByTotalsSumToTableSize) {
  const LeafTable table = tinyTable();
  for (const auto mask : allCuboidsByLayer(0b1111)) {
    std::uint64_t total = 0;
    for (const auto& g : table.groupBy(mask)) total += g.total;
    EXPECT_EQ(total, table.size()) << "mask=" << mask;
  }
}

TEST(LeafTable, ConfidenceIsAnomalousShare) {
  const LeafTable table = tinyTable();
  for (const auto& g : table.groupBy(0b0001)) {
    const Schema& schema = table.schema();
    if (g.ac.toString(schema) == "(a1, *, *, *)") {
      EXPECT_DOUBLE_EQ(g.confidence(), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(g.confidence(), 0.0);
    }
  }
}

TEST(LeafTable, GroupByWithRowsSubset) {
  const LeafTable table = tinyTable();
  const auto anomalous = table.anomalousRows();
  const auto groups = table.groupByWithRows(0b0001, anomalous);
  ASSERT_EQ(groups.size(), 1u);  // only a1 has anomalous leaves
  EXPECT_EQ(groups[0].rows.size(), 8u);
  EXPECT_EQ(groups[0].agg.total, 8u);
}

TEST(LeafTable, CoversAllAnomalies) {
  const LeafTable table = tinyTable();
  const Schema& schema = table.schema();
  const auto exact = AttributeCombination::parse(schema, "(a1, *, *, *)").value();
  const auto partial =
      AttributeCombination::parse(schema, "(a1, b1, *, *)").value();
  EXPECT_TRUE(table.coversAllAnomalies({exact}));
  EXPECT_FALSE(table.coversAllAnomalies({partial}));
  EXPECT_FALSE(table.coversAllAnomalies({}));
  const auto other = AttributeCombination::parse(schema, "(a1, b2, *, *)").value();
  EXPECT_TRUE(table.coversAllAnomalies({partial, other}));
}

TEST(LeafTable, SparseTableGroupsOnlyPresentLeaves) {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  table.addRow(leafFromIndex(schema, 0), 1.0, 1.0, false);
  table.addRow(leafFromIndex(schema, 5), 2.0, 2.0, true);
  const auto groups = table.groupBy(0b1111);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(LeafTable, DuplicateLeavesAccumulate) {
  const Schema schema = Schema::tiny();
  LeafTable table(schema);
  const auto leaf = leafFromIndex(schema, 3);
  table.addRow(leaf, 1.0, 2.0, true);
  table.addRow(leaf, 3.0, 4.0, false);
  const auto agg = table.aggregateFor(leaf);
  EXPECT_EQ(agg.total, 2u);
  EXPECT_EQ(agg.anomalous, 1u);
  EXPECT_DOUBLE_EQ(agg.v_sum, 4.0);
  EXPECT_DOUBLE_EQ(agg.f_sum, 6.0);
}

// --------------------------------------------------------- InvertedIndex

TEST(InvertedIndex, PostingsPartitionRows) {
  const LeafTable table = tinyTable();
  const InvertedIndex index(table);
  for (AttrId a = 0; a < table.schema().attributeCount(); ++a) {
    std::size_t total = 0;
    for (ElemId e = 0; e < table.schema().cardinality(a); ++e) {
      total += index.posting(a, e).size();
    }
    EXPECT_EQ(total, table.size());
  }
}

TEST(InvertedIndex, RowsMatchingAgreesWithScan) {
  const LeafTable table = tinyTable();
  const InvertedIndex index(table);
  const Schema& schema = table.schema();
  for (const char* text :
       {"(a1, *, *, *)", "(a1, b1, *, *)", "(*, b2, c1, d1)", "(*, *, *, *)",
        "(a3, b2, c2, d2)"}) {
    const auto ac = AttributeCombination::parse(schema, text).value();
    std::vector<RowId> scanned;
    for (RowId id = 0; id < table.size(); ++id) {
      if (ac.matchesLeaf(table.row(id).ac)) scanned.push_back(id);
    }
    EXPECT_EQ(index.rowsMatching(ac), scanned) << text;
  }
}

TEST(InvertedIndex, AggregateForMatchesTableScan) {
  const LeafTable table = tinyTable();
  const InvertedIndex index(table);
  const auto ac = AttributeCombination::parse(table.schema(),
                                              "(a1, *, c1, *)")
                      .value();
  const auto from_index = index.aggregateFor(ac);
  const auto from_scan = table.aggregateFor(ac);
  EXPECT_EQ(from_index.total, from_scan.total);
  EXPECT_EQ(from_index.anomalous, from_scan.anomalous);
  EXPECT_DOUBLE_EQ(from_index.v_sum, from_scan.v_sum);
}

}  // namespace
}  // namespace rap::dataset
